"""The discrete-event simulation core: queue semantics and parity.

Two layers of guarantees:

1. :class:`~repro.sim.eventengine.DiscreteEventEngine` unit tests — the
   deterministic total order (time, then priority, then scheduling
   sequence), 6tisch-style tag replacement, lazy cancellation, the
   ``until`` horizon, and the no-scheduling-into-the-past contract.
2. Engine parity properties — the event-driven replay in
   :class:`~repro.sim.engine.BiochipSimulator` is a *performance*
   rewrite, not a semantic one: for any bundled assay and fault
   scenario, ``engine="event"`` and ``engine="stepped"`` must produce
   bit-identical :class:`SimulationReport`\\ s (events, realized
   intervals, transport accounting — everything), and checkpoints taken
   from the event log must equal the stepped reference's replayed ones.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.catalog import build_assay
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.sim import DiscreteEventEngine
from repro.sim.engine import BiochipSimulator
from repro.synthesis.flow import SynthesisFlow
from repro.util.errors import SimulationError


# ---------------------------------------------------------------------------
# DiscreteEventEngine unit tests
# ---------------------------------------------------------------------------


class TestEventQueueOrdering:
    def test_fires_in_time_order_regardless_of_scheduling_order(self):
        engine = DiscreteEventEngine()
        fired: list[str] = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        assert engine.run() == 3
        assert fired == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_priority_breaks_time_ties(self):
        engine = DiscreteEventEngine()
        fired: list[str] = []
        engine.schedule(1.0, lambda: fired.append("low"), priority=9)
        engine.schedule(1.0, lambda: fired.append("high"), priority=0)
        engine.run()
        assert fired == ["high", "low"]

    def test_sequence_breaks_full_ties_fifo(self):
        engine = DiscreteEventEngine()
        fired: list[int] = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: fired.append(i), priority=0)
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_tuple_times_order_lexicographically(self):
        # The replay layer uses (phase, seconds) times; phase dominates.
        engine = DiscreteEventEngine()
        fired: list[str] = []
        engine.schedule((1, 0.0), lambda: fired.append("replay@0"))
        engine.schedule((0, 99.0), lambda: fired.append("fault@99"))
        engine.run()
        assert fired == ["fault@99", "replay@0"]

    def test_callbacks_can_schedule_future_events_within_a_run(self):
        engine = DiscreteEventEngine()
        fired: list[float] = []

        def chain(t: float) -> None:
            fired.append(t)
            if t < 3.0:
                engine.schedule(t + 1.0, lambda: chain(t + 1.0))

        engine.schedule(1.0, lambda: chain(1.0))
        assert engine.run() == 3
        assert fired == [1.0, 2.0, 3.0]


class TestTagsAndCancellation:
    def test_tag_replacement_keeps_only_the_latest(self):
        engine = DiscreteEventEngine()
        fired: list[str] = []
        engine.schedule(1.0, lambda: fired.append("old"), tag="op")
        engine.schedule(2.0, lambda: fired.append("new"), tag="op")
        engine.run()
        assert fired == ["new"]
        assert engine.cancelled == 1
        assert engine.scheduled == 2
        assert engine.processed == 1

    def test_cancel_is_lazy_and_idempotent(self):
        engine = DiscreteEventEngine()
        fired: list[str] = []
        engine.schedule(1.0, lambda: fired.append("x"), tag="t")
        assert engine.cancel("t") is True
        assert engine.cancel("t") is False
        assert engine.cancel("never-scheduled") is False
        assert engine.pending == 0
        assert engine.run() == 0
        assert fired == []

    def test_peek_time_skips_cancelled_entries(self):
        engine = DiscreteEventEngine()
        engine.schedule(1.0, lambda: None, tag="a")
        engine.schedule(2.0, lambda: None)
        engine.cancel("a")
        assert engine.peek_time() == 2.0

    def test_tag_is_released_after_firing(self):
        engine = DiscreteEventEngine()
        fired: list[str] = []
        engine.schedule(1.0, lambda: fired.append("first"), tag="op")
        engine.run()
        # Re-using the tag after its event fired schedules fresh —
        # nothing left to replace.
        engine.schedule(2.0, lambda: fired.append("second"), tag="op")
        engine.run()
        assert fired == ["first", "second"]
        assert engine.cancelled == 0


class TestRunSemantics:
    def test_until_leaves_later_events_queued(self):
        engine = DiscreteEventEngine()
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        assert engine.run(until=2.0) == 2
        assert fired == [1.0, 2.0]
        assert engine.pending == 1
        assert engine.run() == 1
        assert fired == [1.0, 2.0, 3.0]

    def test_scheduling_into_the_past_raises(self):
        engine = DiscreteEventEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="before the current"):
            engine.schedule(4.0, lambda: None)

    def test_scheduling_at_the_current_instant_is_allowed(self):
        engine = DiscreteEventEngine()
        fired: list[str] = []
        engine.schedule(
            1.0, lambda: engine.schedule(1.0, lambda: fired.append("same-t"))
        )
        engine.run()
        assert fired == ["same-t"]


# ---------------------------------------------------------------------------
# Engine parity: event-driven replay vs the stepped reference
# ---------------------------------------------------------------------------

_SEED = 11
#: Assays the property sweeps; tree16 (the paper schedule) is covered by
#: the benchmark's parity gate — here we keep examples cheap enough for
#: hypothesis to explore many fault grids.
_PARITY_ASSAYS = ("pcr", "dilution", "tree8")


@lru_cache(maxsize=None)
def _synthesized(assay: str):
    """One placed, scheduled instance per assay, shared across examples."""
    graph, explicit = build_assay(assay)
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=_SEED)
    )
    return flow.run(graph, explicit_binding=explicit)


def _simulator(assay: str, engine: str) -> BiochipSimulator:
    result = _synthesized(assay)
    return BiochipSimulator(
        result.graph,
        result.schedule,
        result.binding,
        result.placement_result.placement,
        strict=False,
        engine=engine,
    )


def _fault_grid(sim: BiochipSimulator, picks: list[tuple[int, float]]):
    """Aim faults at module cells: (op index, makespan fraction) pairs."""
    ops = sorted(pm.op_id for pm in sim.placement)
    makespan = sim.schedule.makespan
    faults = []
    for op_index, fraction in picks:
        op_id = ops[op_index % len(ops)]
        faults.append((fraction * makespan, sim.module_cell(op_id)))
    return faults


def _comparable(report) -> tuple:
    """Everything a report observes, in a comparable shape."""
    return (
        report.to_dict(),
        report.events,
        [(r.op_id, r.old.footprint, r.new.footprint) for r in report.relocations],
        report.product.reagents if report.product is not None else None,
        report.product.volume_nl if report.product is not None else None,
    )


class TestEngineParity:
    @given(
        assay=st.sampled_from(_PARITY_ASSAYS),
        picks=st.lists(
            st.tuples(st.integers(0, 30), st.floats(0.05, 0.95)),
            min_size=0,
            max_size=2,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_reports_bit_identical_across_engines(self, assay, picks):
        event_sim = _simulator(assay, "event")
        stepped_sim = _simulator(assay, "stepped")
        faults = _fault_grid(event_sim, picks)
        event_report = event_sim.run(faults=faults)
        stepped_report = stepped_sim.run(faults=faults)
        assert _comparable(event_report) == _comparable(stepped_report)

    def test_event_engine_reuses_the_array_across_runs(self):
        sim = _simulator("pcr", "event")
        faults = _fault_grid(sim, [(0, 0.3)])
        first = sim.run(faults=faults)
        again = sim.run(faults=faults)
        nominal = sim.run()
        assert _comparable(first) == _comparable(again)
        assert nominal.completed and nominal.delay_s == 0.0

    def test_unknown_engine_rejected(self):
        result = _synthesized("pcr")
        with pytest.raises(ValueError, match="unknown simulation engine"):
            BiochipSimulator(
                result.graph,
                result.schedule,
                result.binding,
                result.placement_result.placement,
                engine="warp",
            )


class TestCheckpointOnEventLog:
    @given(
        assay=st.sampled_from(_PARITY_ASSAYS),
        fraction=st.floats(0.1, 0.9),
        pick=st.integers(0, 30),
    )
    @settings(max_examples=15, deadline=None)
    def test_checkpoint_truncation_matches_stepped_replay(
        self, assay, fraction, pick
    ):
        """A checkpoint truncated from the event log equals the stepped
        reference's replayed checkpoint, field for field."""
        event_sim = _simulator(assay, "event")
        stepped_sim = _simulator(assay, "stepped")
        makespan = event_sim.schedule.makespan
        fault_time = 0.25 * fraction * makespan
        faults = _fault_grid(event_sim, [(pick, 0.25 * fraction)])
        time_s = fraction * makespan
        try:
            event_cp = event_sim.checkpoint(time_s, faults=faults)
        except SimulationError as exc:
            # The faulted run is unrecoverable: both engines must agree.
            with pytest.raises(SimulationError):
                stepped_sim.checkpoint(time_s, faults=faults)
            return
        stepped_cp = stepped_sim.checkpoint(time_s, faults=faults)
        assert event_cp.to_dict() == stepped_cp.to_dict()
        assert event_cp.events_prefix == stepped_cp.events_prefix
        assert fault_time <= time_s  # scenario sanity, not a contract

    def test_checkpoint_after_run_is_a_cache_hit(self):
        """Once the event engine has run a fault list, checkpointing it
        is log truncation — the same object as the cold checkpoint."""
        sim = _simulator("pcr", "event")
        faults = _fault_grid(sim, [(2, 0.2)])
        report = sim.run(faults=faults)
        assert report.completed
        time_s = 0.6 * sim.schedule.makespan
        warm = sim.checkpoint(time_s, faults=faults)

        cold_sim = _simulator("pcr", "event")
        cold = cold_sim.checkpoint(time_s, faults=faults)
        assert warm.to_dict() == cold.to_dict()
        assert warm.events_prefix == cold.events_prefix

    def test_resume_round_trip_is_bit_identical(self):
        """checkpoint -> resume with no new fault reproduces the
        original run exactly, on both engines."""
        for engine in ("event", "stepped"):
            sim = _simulator("pcr", engine)
            faults = _fault_grid(sim, [(2, 0.25)])
            original = sim.run(faults=faults)
            assert original.completed
            cp = sim.checkpoint(0.5 * sim.schedule.makespan, faults=faults)
            resumed = sim.resume(cp)
            assert _comparable(resumed) == _comparable(original)

    def test_resume_with_new_fault_matches_across_engines(self):
        event_sim = _simulator("pcr", "event")
        stepped_sim = _simulator("pcr", "stepped")
        makespan = event_sim.schedule.makespan
        first = _fault_grid(event_sim, [(2, 0.2)])
        late = _fault_grid(event_sim, [(4, 0.7)])
        time_s = 0.5 * makespan

        event_cp = event_sim.checkpoint(time_s, faults=first)
        stepped_cp = stepped_sim.checkpoint(time_s, faults=first)
        event_report = event_sim.resume(event_cp, new_faults=late)
        stepped_report = stepped_sim.resume(stepped_cp, new_faults=late)
        assert _comparable(event_report) == _comparable(stepped_report)

    def test_checkpoint_rejects_future_faults(self):
        sim = _simulator("pcr", "event")
        faults = _fault_grid(sim, [(0, 0.9)])
        with pytest.raises(ValueError, match="future faults"):
            sim.checkpoint(0.1 * sim.schedule.makespan, faults=faults)
