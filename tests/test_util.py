"""Tests for shared utilities (rng plumbing, tables, errors)."""

import random

import pytest

from repro.util.errors import (
    BindingError,
    PlacementError,
    ReconfigurationError,
    ReproError,
    RoutingError,
    ScheduleError,
    SimulationError,
)
from repro.util.rng import ensure_rng, spawn_rng
from repro.util.tables import format_table


class TestEnsureRng:
    def test_none_gives_fresh_rng(self):
        rng = ensure_rng(None)
        assert isinstance(rng, random.Random)

    def test_int_seed_is_reproducible(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_rng_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_bool_rejected(self):
        # True is an int subtype; seeding with it is almost always a bug.
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rng_is_independent(self):
        parent = ensure_rng(7)
        child = spawn_rng(parent)
        a = [child.random() for _ in range(3)]
        # Re-derive from the same parent state: same child stream.
        parent2 = ensure_rng(7)
        child2 = spawn_rng(parent2)
        assert a == [child2.random() for _ in range(3)]


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        out = format_table(("x",), [(1,)], title="T")
        assert out.startswith("T\n")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_cells_stringified(self):
        out = format_table(("v",), [(1.5,), (None,)])
        assert "1.5" in out and "None" in out


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "err",
        [
            BindingError,
            PlacementError,
            ReconfigurationError,
            RoutingError,
            ScheduleError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, err):
        assert issubclass(err, ReproError)
        with pytest.raises(ReproError):
            raise err("boom")
