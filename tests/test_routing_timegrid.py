"""Tests for the time-expanded occupancy grid."""

import pytest

from repro.geometry import Point, Rect
from repro.routing import Net, RoutedNet, TimeGrid


@pytest.fixture
def grid():
    return TimeGrid(10, 10)


def net(net_id="n", source=(1, 1), goal=(9, 9), producer=None, consumer=None):
    return Net(net_id, Point(*source), Point(*goal), producer=producer, consumer=consumer)


class TestConstruction:
    def test_rejects_degenerate_dims(self):
        with pytest.raises(ValueError):
            TimeGrid(0, 5)

    def test_bounds(self, grid):
        assert grid.in_bounds(Point(1, 1))
        assert grid.in_bounds(Point(10, 10))
        assert not grid.in_bounds(Point(0, 5))
        assert not grid.in_bounds(Point(5, 11))


class TestStaticObstacles:
    def test_faulty_cells_block_exactly(self, grid):
        grid.add_faulty([Point(4, 4)])
        assert grid.static_blocked(Point(4, 4))
        assert not grid.static_blocked(Point(4, 5))

    def test_parked_halo_blocks_neighborhood(self, grid):
        grid.add_parked([Point(5, 5)])
        # The cell and all 8 neighbors are blocked; distance-2 cells are not.
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                assert grid.static_blocked(Point(5 + dx, 5 + dy))
        assert not grid.static_blocked(Point(7, 5))

    def test_parked_halo_can_be_grandfathered(self, grid):
        grid.add_parked([Point(5, 5)])
        assert not grid.static_blocked(Point(5, 6), ignore_parked_halo=True)

    def test_module_blocks_unless_owner_exempt(self, grid):
        grid.add_module(Rect(3, 3, 3, 3), "M1")
        assert grid.static_blocked(Point(4, 4))
        assert not grid.static_blocked(Point(4, 4), exempt_ops=frozenset({"M1"}))
        assert not grid.static_blocked(Point(2, 3))

    def test_module_registers_region(self, grid):
        grid.add_module(Rect(3, 3, 3, 3), "M1")
        assert grid.in_region("M1", Point(5, 5))
        assert not grid.in_region("M1", Point(6, 6))
        assert not grid.in_region(None, Point(5, 5))

    def test_blocked_at_own_source_ignores_parked_halo(self, grid):
        # A droplet parked next to another droplet may still wait at home.
        grid.add_parked([Point(5, 5)])
        trapped = net(source=(5, 6), goal=(9, 9))
        assert not grid.blocked(Point(5, 6), 0, trapped)
        assert grid.blocked(Point(6, 6), 0, trapped)


class TestReservations:
    def test_trajectory_halo_spans_adjacent_steps(self, grid):
        rn = RoutedNet(net("a", (2, 2), (4, 2)), (Point(2, 2), Point(3, 2), Point(4, 2)))
        grid.reserve(rn, horizon=10)
        other = net("b", (9, 9), (1, 1))
        # Occupied at (3,2) on step 1 -> its 3x3 halo blocks steps 0..2.
        for step in (0, 1, 2):
            assert grid.reserved_blocked(Point(3, 2), step, other)
            assert grid.reserved_blocked(Point(2, 3), step, other)
        # After arrival the droplet parks at the goal through the horizon.
        assert grid.reserved_blocked(Point(4, 2), 9, other)
        # Far cells are never blocked.
        assert not grid.reserved_blocked(Point(8, 8), 1, other)

    def test_own_reservation_does_not_block(self, grid):
        rn = RoutedNet(net("a", (2, 2), (4, 2)), (Point(2, 2), Point(3, 2), Point(4, 2)))
        grid.reserve(rn, horizon=10)
        assert not grid.reserved_blocked(Point(3, 2), 1, rn.net)

    def test_duplicate_reservation_rejected(self, grid):
        rn = RoutedNet(net("a"), (Point(1, 1),))
        grid.reserve(rn, horizon=5)
        with pytest.raises(ValueError):
            grid.reserve(rn, horizon=5)

    def test_remove_reservation(self, grid):
        rn = RoutedNet(net("a", (2, 2), (4, 2)), (Point(2, 2), Point(3, 2), Point(4, 2)))
        grid.reserve(rn, horizon=10)
        grid.remove_reservation("a")
        other = net("b", (9, 9), (1, 1))
        assert not grid.reserved_blocked(Point(3, 2), 1, other)
        # Re-reserving after removal is allowed.
        grid.reserve(rn, horizon=10)
        assert grid.reserved_blocked(Point(3, 2), 1, other)

    def test_clear_reservations_keeps_static(self, grid):
        grid.add_faulty([Point(7, 7)])
        grid.reserve(RoutedNet(net("a"), (Point(1, 1),)), horizon=5)
        grid.clear_reservations()
        assert not grid.reserved_blocked(Point(1, 1), 0, net("b", (9, 9), (1, 2)))
        assert grid.static_blocked(Point(7, 7))

    def test_same_consumer_exempt_inside_merge_zone_only(self, grid):
        grid.add_module(Rect(6, 6, 3, 3), "MIX")
        arrived = RoutedNet(
            net("a", (7, 5), (7, 7), consumer="MIX"), (Point(7, 5), Point(7, 6), Point(7, 7))
        )
        grid.reserve(arrived, horizon=10)
        sibling = net("b", (2, 2), (7, 8), consumer="MIX")
        stranger = net("c", (2, 2), (9, 9), consumer="OTHER")
        # Inside the consumer footprint the sibling ignores the halo...
        assert not grid.reserved_blocked(Point(7, 8), 5, sibling)
        # ...but a net for another consumer does not...
        assert grid.reserved_blocked(Point(7, 8), 5, stranger)
        # ...and outside the footprint even the sibling must keep spacing.
        assert grid.reserved_blocked(Point(7, 4), 1, sibling)

    def test_same_producer_exempt_inside_split_zone(self, grid):
        grid.add_region("SRC", Rect(1, 1, 3, 3))
        share = RoutedNet(net("a", (2, 2), (9, 2), producer="SRC"), (Point(2, 2), Point(3, 2)))
        grid.reserve(share, horizon=6)
        sibling = net("b", (2, 2), (2, 9), producer="SRC")
        assert not grid.reserved_blocked(Point(2, 2), 0, sibling)
        stranger = net("c", (5, 5), (2, 9), producer="ELSE")
        assert grid.reserved_blocked(Point(2, 2), 0, stranger)
