"""Tests for the incremental delta-cost evaluator and annealing path.

The contract under test: for any placement and any legal move sequence,
the evaluator's running components track a full recomputation within
float tolerance, every delta equals the full-cost difference, and
apply -> revert restores the exact prior state. The hypothesis section
drives that contract over random schedules and random move sequences;
the cross-check section drives the real annealer over every bundled
assay with per-move verification enabled.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.catalog import BUNDLED_ASSAYS
from repro.modules.kinds import ModuleKind
from repro.modules.module import ModuleSpec
from repro.pipeline.context import SynthesisContext
from repro.pipeline.stages import BindStage, ScheduleStage
from repro.placement.annealer import AnnealingParams, SimulatedAnnealing
from repro.placement.cost import AreaCost, FaultAwareCost
from repro.placement.greedy import build_placed_modules
from repro.placement.incremental import (
    IncrementalCostEvaluator,
    Move,
    ModuleUpdate,
    apply_move,
)
from repro.placement.model import PlacedModule, Placement
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.placement.transport import TransportAwareCost
from repro.placement.two_stage import TwoStagePlacer
from repro.util.errors import PlacementError

TOL = 1e-6


def make_spec(fw: int, fh: int) -> ModuleSpec:
    return ModuleSpec(
        name=f"mix-{fw}x{fh}",
        kind=ModuleKind.MIXER,
        functional_width=fw,
        functional_height=fh,
        duration_s=5.0,
    )


SPECS = [make_spec(1, 1), make_spec(1, 2), make_spec(2, 2), make_spec(2, 3)]


def build_placement(layout, core=16) -> Placement:
    """layout: list of (op, spec_idx, x, y, start, stop, rotated)."""
    p = Placement(core, core)
    for op, spec_idx, x, y, start, stop, rotated in layout:
        p.add(PlacedModule(
            op_id=op, spec=SPECS[spec_idx], x=x, y=y,
            start=start, stop=stop, rotated=rotated,
        ))
    return p


def legal_update(placement: Placement, op: str, x: int, y: int, rotated: bool):
    pm = placement.get(op)
    if rotated and pm.spec.is_square:
        rotated = False
    w, h = pm.spec.dims(rotated)
    x = max(1, min(x, placement.core_width - w + 1))
    y = max(1, min(y, placement.core_height - h + 1))
    return ModuleUpdate(op, x, y, rotated)


class TestEvaluatorBasics:
    def layout(self):
        return [
            ("a", 2, 1, 1, 0.0, 10.0, False),
            ("b", 2, 3, 3, 5.0, 15.0, False),   # overlaps a in space+time
            ("c", 1, 9, 9, 0.0, 10.0, False),
            ("d", 3, 1, 9, 20.0, 30.0, False),  # time-disjoint from all
        ]

    def test_initial_components_match_placement(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        assert ev.overlap_total == pytest.approx(p.overlap_volume())
        assert ev.conflict_pairs == len(p.conflicting_pairs())
        bb = p.bounding_box()
        assert ev.bounding_box() == (bb.x, bb.y, bb.x2, bb.y2)
        assert ev.area_cells == p.area_cells
        assert ev.pull_sum == sum(
            pm.footprint.x2 + pm.footprint.y2 for pm in p
        )

    def test_empty_placement_rejected(self):
        with pytest.raises(PlacementError):
            IncrementalCostEvaluator(Placement(8, 8))

    def test_unknown_op_rejected(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        with pytest.raises(PlacementError):
            ev.delta_components(Move(updates=(ModuleUpdate("ghost", 1, 1, False),)))

    def test_duplicate_update_rejected(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        move = Move(updates=(
            ModuleUpdate("a", 1, 1, False), ModuleUpdate("a", 2, 2, False),
        ))
        with pytest.raises(PlacementError):
            ev.delta_components(move)

    def test_empty_move_rejected(self):
        with pytest.raises(ValueError):
            Move(updates=())

    def test_out_of_core_apply_rejected_and_state_intact(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        with pytest.raises(PlacementError):
            ev.apply(Move(updates=(ModuleUpdate("a", 15, 15, False),)))
        ev.check_consistency()

    def test_delta_matches_full_recompute_displace(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        cost = AreaCost()
        move = Move(updates=(legal_update(p, "a", 6, 6, False),))
        before = cost(p)
        delta = cost.delta(ev, move)
        assert delta == pytest.approx(cost(apply_move(p, move)) - before, abs=TOL)

    def test_delta_matches_full_recompute_swap(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        cost = AreaCost()
        move = Move(updates=(
            legal_update(p, "a", 3, 3, False),
            legal_update(p, "b", 1, 1, True),
        ))
        before = cost(p)
        delta = cost.delta(ev, move)
        assert delta == pytest.approx(cost(apply_move(p, move)) - before, abs=TOL)

    def test_apply_then_revert_is_exact(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        cost = AreaCost()
        before_cost = cost.current(ev)
        before_bbox = ev.bounding_box()
        before_state = {pm.op_id: (pm.x, pm.y, pm.rotated) for pm in p}

        move = Move(updates=(legal_update(p, "b", 7, 2, False),))
        inverse = ev.apply(move)
        ev.apply(inverse)
        ev.resync()
        assert cost.current(ev) == pytest.approx(before_cost, abs=TOL)
        assert ev.bounding_box() == before_bbox
        assert {pm.op_id: (pm.x, pm.y, pm.rotated) for pm in p} == before_state
        ev.check_consistency()

    def test_resync_reports_drift(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        rng = random.Random(0)
        for _ in range(50):
            op = rng.choice(p.op_ids())
            move = Move(updates=(legal_update(
                p, op, rng.randint(1, 16), rng.randint(1, 16), bool(rng.getrandbits(1))
            ),))
            ev.apply(move)
        drift = ev.resync()
        assert drift <= TOL
        ev.check_consistency()

    def test_auto_resync_cadence(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p, resync_every=5)
        rng = random.Random(1)
        for _ in range(23):
            op = rng.choice(p.op_ids())
            ev.apply(Move(updates=(legal_update(
                p, op, rng.randint(1, 16), rng.randint(1, 16), False
            ),)))
        # 23 applies with cadence 5 -> 4 auto-resyncs, 3 applies since.
        assert ev._applies_since_resync == 3

    def test_signature_translation_invariant(self):
        layout = self.layout()
        p1 = build_placement(layout)
        shifted = [(op, s, x + 2, y + 1, a, b, r) for op, s, x, y, a, b, r in layout]
        p2 = build_placement(shifted)
        assert (IncrementalCostEvaluator(p1).signature()
                == IncrementalCostEvaluator(p2).signature())

    def test_candidate_signature_matches_applied_signature(self):
        p = build_placement(self.layout())
        ev = IncrementalCostEvaluator(p)
        move = Move(updates=(legal_update(p, "c", 2, 2, False),))
        predicted = ev.candidate_signature(move)
        ev.apply(move)
        assert ev.signature() == predicted


class TestCostProtocols:
    def test_supports_incremental_standard_costs(self):
        graph, _ = BUNDLED_ASSAYS["pcr"]()
        assert AreaCost().supports_incremental()
        assert FaultAwareCost(beta=30).supports_incremental()
        assert TransportAwareCost(graph).supports_incremental()

    def test_call_override_without_delta_falls_back(self):
        class Custom(AreaCost):
            def __call__(self, placement):
                return super().__call__(placement) + 1.0

        assert not Custom().supports_incremental()
        placer = SimulatedAnnealingPlacer(cost=Custom())
        assert not placer.uses_incremental()

    def test_incremental_disabled_by_flag(self):
        placer = SimulatedAnnealingPlacer(incremental=False)
        assert not placer.uses_incremental()

    def test_cross_check_without_incremental_rejected(self):
        """cross_check is a verification request — never silently a no-op."""
        graph, binding = BUNDLED_ASSAYS["pcr"]()
        context = SynthesisContext(graph=graph, explicit_binding=binding)
        BindStage().run(context)
        ScheduleStage().run(context)
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), seed=1,
            incremental=False, cross_check=True,
        )
        with pytest.raises(ValueError, match="cross_check"):
            placer.place(context.schedule, context.binding)

    def test_fault_aware_delta_matches_full(self):
        p = build_placement([
            ("a", 2, 1, 1, 0.0, 10.0, False),
            ("b", 2, 6, 1, 0.0, 10.0, False),
            ("c", 1, 1, 6, 0.0, 10.0, False),
        ], core=12)
        ev = IncrementalCostEvaluator(p)
        cost = FaultAwareCost(beta=20.0)
        for target in [(10, 10), (2, 2), (6, 6)]:
            move = Move(updates=(legal_update(p, "c", *target, False),))
            expected = cost(apply_move(p, move)) - cost(p)
            assert cost.delta(ev, move) == pytest.approx(expected, abs=TOL)

    def test_fault_aware_fti_is_memoized(self):
        p = build_placement([
            ("a", 2, 1, 1, 0.0, 10.0, False),
            ("b", 2, 6, 1, 0.0, 10.0, False),
        ], core=12)
        ev = IncrementalCostEvaluator(p)
        cost = FaultAwareCost(beta=20.0)
        calls = 0
        original = cost.fti_report

        def counting(placement):
            nonlocal calls
            calls += 1
            return original(placement)

        cost.fti_report = counting
        move = Move(updates=(legal_update(p, "a", 1, 1, False),))
        cost.delta(ev, move)
        first = calls
        cost.delta(ev, move)  # same current and candidate signatures
        assert calls == first

    def test_transport_delta_matches_full(self):
        graph, binding = BUNDLED_ASSAYS["pcr"]()
        context = SynthesisContext(graph=graph, explicit_binding=binding)
        BindStage().run(context)
        ScheduleStage().run(context)
        mods = build_placed_modules(context.schedule, context.binding)
        p = Placement(20, 20)
        rng = random.Random(3)
        for pm in mods:
            w, h = pm.spec.dims(False)
            p.add(pm.moved_to(rng.randint(1, 20 - w + 1), rng.randint(1, 20 - h + 1)))
        ev = IncrementalCostEvaluator(p)
        cost = TransportAwareCost(graph)
        ops = p.op_ids()
        for i in range(6):
            op = ops[i % len(ops)]
            move = Move(updates=(legal_update(
                p, op, rng.randint(1, 20), rng.randint(1, 20), bool(i % 2)
            ),))
            expected = cost(apply_move(p, move)) - cost(p)
            assert cost.delta(ev, move) == pytest.approx(expected, abs=TOL)


class TestIncrementalEngine:
    def place(self, **kwargs):
        graph, binding = BUNDLED_ASSAYS["pcr"]()
        context = SynthesisContext(graph=graph, explicit_binding=binding)
        BindStage().run(context)
        ScheduleStage().run(context)
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), seed=9, **kwargs
        )
        return placer.place(context.schedule, context.binding)

    def test_matches_full_path_exactly(self):
        """Same seed => same trajectory, same best snapshot, both paths.

        The generator consumes identical RNG draws either way and the
        best-snapshot decision is confirmed with exact arithmetic, so on
        the (integer-valued) bundled schedules the two paths agree
        bit-for-bit, not just in area.
        """
        inc = self.place(incremental=True)
        full = self.place(incremental=False)
        assert {m.op_id: (m.x, m.y, m.rotated) for m in inc.placement} == {
            m.op_id: (m.x, m.y, m.rotated) for m in full.placement
        }
        assert inc.stats.best_cost == pytest.approx(full.stats.best_cost, abs=1e-9)
        assert inc.stats.improvements == full.stats.improvements
        assert inc.stats.acceptances == full.stats.acceptances
        inc.placement.validate()

    def test_record_history_opt_out(self):
        assert self.place(record_history=True).stats.history
        assert not self.place(record_history=False).stats.history
        # History is bookkeeping only: the trajectory is unaffected.
        assert (self.place(record_history=True).area_cells
                == self.place(record_history=False).area_cells)

    def test_generic_engine_record_history_opt_out(self):
        rng = random.Random(0)
        engine = SimulatedAnnealing(
            AnnealingParams(initial_temp=10.0, cooling=0.5,
                            iterations_per_module=1, max_rounds=3),
            seed=0,
        )
        _, stats = engine.optimize(
            5.0, lambda x: x * x, lambda x, t: x + rng.gauss(0, 1), 10,
            record_history=False,
        )
        assert stats.rounds == 3 and not stats.history


@pytest.mark.parametrize("assay", sorted(BUNDLED_ASSAYS))
def test_cross_check_all_bundled_assays(assay):
    """Acceptance bar: per-move |delta - full| < 1e-6 on every assay."""
    graph, binding = BUNDLED_ASSAYS[assay]()
    context = SynthesisContext(graph=graph, explicit_binding=binding)
    BindStage().run(context)
    ScheduleStage().run(context)
    params = AnnealingParams(
        initial_temp=500.0, cooling=0.8, iterations_per_module=12,
        freeze_rounds=2, window_gamma=0.37, max_rounds=6,
    )
    placer = SimulatedAnnealingPlacer(params=params, seed=13, cross_check=True)
    result = placer.place(context.schedule, context.binding)
    result.placement.validate()


def test_cross_check_two_stage_pcr():
    """The fault-aware LTSA deltas verify against the full FTI cost."""
    graph, binding = BUNDLED_ASSAYS["pcr"]()
    context = SynthesisContext(graph=graph, explicit_binding=binding)
    BindStage().run(context)
    ScheduleStage().run(context)
    params = AnnealingParams(
        initial_temp=200.0, cooling=0.8, iterations_per_module=8,
        freeze_rounds=2, window_gamma=0.37, max_rounds=4,
    )
    placer = TwoStagePlacer(
        stage1_params=params, stage2_params=params, seed=13, cross_check=True
    )
    result = placer.place(context.schedule, context.binding)
    result.placement.validate()


# ---------------------------------------------------------------------------
# hypothesis: random schedules, random move sequences
# ---------------------------------------------------------------------------

module_st = st.tuples(
    st.integers(min_value=0, max_value=len(SPECS) - 1),
    st.integers(min_value=1, max_value=12),   # x
    st.integers(min_value=1, max_value=12),   # y
    st.integers(min_value=0, max_value=30),   # start
    st.integers(min_value=1, max_value=20),   # duration
    st.booleans(),                            # rotated
    st.booleans(),                            # half-second start offset
)

moves_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10 ** 6),  # module selector
        st.integers(min_value=1, max_value=16),       # x
        st.integers(min_value=1, max_value=16),       # y
        st.booleans(),                                # rotated
        st.booleans(),                                # make it a swap
    ),
    min_size=1,
    max_size=30,
)


def placement_from_draw(draw_modules) -> Placement:
    core = 16
    p = Placement(core, core)
    for i, (spec_idx, x, y, start, duration, rotated, half) in enumerate(draw_modules):
        spec = SPECS[spec_idx]
        rot = rotated and not spec.is_square
        w, h = spec.dims(rot)
        start_t = start + (0.5 if half else 0.0)
        p.add(PlacedModule(
            op_id=f"m{i}",
            spec=spec,
            x=min(x, core - w + 1),
            y=min(y, core - h + 1),
            start=start_t,
            stop=start_t + duration,
            rotated=rot,
        ))
    return p


@settings(max_examples=30, deadline=None)
@given(
    modules=st.lists(module_st, min_size=2, max_size=7),
    moves=moves_st,
)
def test_incremental_tracks_full_recompute(modules, moves):
    """Running cost tracks full recomputation; apply/revert is exact."""
    placement = placement_from_draw(modules)
    ev = IncrementalCostEvaluator(placement, resync_every=10 ** 9)
    cost = AreaCost()
    running = cost.current(ev)
    assert running == pytest.approx(cost(placement), abs=TOL)

    ops = placement.op_ids()
    for selector, x, y, rotated, swap in moves:
        op = ops[selector % len(ops)]
        updates = [legal_update(placement, op, x, y, rotated)]
        if swap and len(ops) >= 2:
            other = ops[(selector // len(ops)) % len(ops)]
            if other != op:
                pm = placement.get(op)
                updates.append(legal_update(placement, other, pm.x, pm.y, False))
        move = Move(updates=tuple(updates))

        before_full = cost(placement)
        before_bbox = ev.bounding_box()
        before_pull = ev.pull_sum
        delta = cost.delta(ev, move)

        inverse = ev.apply(move)
        after_full = cost(placement)
        # 1. the delta prices the move exactly (within float tolerance)
        assert delta == pytest.approx(after_full - before_full, abs=TOL)
        # 2. the running components track the full recompute
        ev.check_consistency(TOL)
        running += delta
        assert running == pytest.approx(cost.current(ev), abs=TOL)

        # 3. apply -> revert restores the exact prior cost and bbox
        ev.apply(inverse)
        assert ev.bounding_box() == before_bbox
        assert ev.pull_sum == before_pull
        assert cost(placement) == pytest.approx(before_full, abs=TOL)
        ev.check_consistency(TOL)

        # leave the move applied for the next iteration
        ev.apply(move)
        running = cost.current(ev)
