"""Unit tests for sequencing graphs and operations."""

import pytest

from repro.assay.graph import SequencingGraph
from repro.assay.operations import Operation, OperationType
from repro.modules.kinds import ModuleKind
from repro.util.errors import ScheduleError


def simple_chain() -> SequencingGraph:
    g = SequencingGraph("chain")
    for op_id in ("a", "b", "c"):
        g.add_operation(Operation(op_id, OperationType.MIX))
    g.add_dependency("a", "b")
    g.add_dependency("b", "c")
    return g


class TestOperation:
    def test_reconfigurable_classification(self):
        assert OperationType.MIX.is_reconfigurable
        assert OperationType.STORE.is_reconfigurable
        assert OperationType.DETECT.is_reconfigurable
        assert OperationType.DILUTE.is_reconfigurable
        assert not OperationType.DISPENSE.is_reconfigurable
        assert not OperationType.OUTPUT.is_reconfigurable

    def test_module_kind_mapping(self):
        assert OperationType.MIX.module_kind is ModuleKind.MIXER
        assert OperationType.DETECT.module_kind is ModuleKind.DETECTOR

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Operation("", OperationType.MIX)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Operation("x", OperationType.MIX, duration_s=0.0)


class TestGraphConstruction:
    def test_add_and_lookup(self):
        g = SequencingGraph()
        op = g.add_operation(Operation("m1", OperationType.MIX))
        assert g.operation("m1") is op
        assert "m1" in g
        assert len(g) == 1

    def test_duplicate_id_rejected(self):
        g = SequencingGraph()
        g.add_operation(Operation("m1", OperationType.MIX))
        with pytest.raises(ValueError):
            g.add_operation(Operation("m1", OperationType.MIX))

    def test_dependency_requires_existing_nodes(self):
        g = SequencingGraph()
        g.add_operation(Operation("a", OperationType.MIX))
        with pytest.raises(KeyError):
            g.add_dependency("a", "missing")

    def test_self_dependency_rejected(self):
        g = SequencingGraph()
        g.add_operation(Operation("a", OperationType.MIX))
        with pytest.raises(ValueError):
            g.add_dependency("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        g = simple_chain()
        with pytest.raises(ValueError):
            g.add_dependency("c", "a")
        # The offending edge must not linger.
        assert ("c", "a") not in g.edges()

    def test_mix_convenience(self):
        g = SequencingGraph()
        g.add_operation(Operation("a", OperationType.DISPENSE, duration_s=1))
        g.add_operation(Operation("b", OperationType.DISPENSE, duration_s=1))
        m = g.mix("m", ["a", "b"])
        assert m.type is OperationType.MIX
        assert g.predecessors("m") == ["a", "b"]

    def test_unknown_operation_lookup(self):
        with pytest.raises(KeyError):
            SequencingGraph().operation("ghost")


class TestGraphStructure:
    def test_sources_and_sinks(self):
        g = simple_chain()
        assert g.sources() == ["a"]
        assert g.sinks() == ["c"]

    def test_topological_order_respects_edges(self):
        g = simple_chain()
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_levels(self):
        g = simple_chain()
        assert g.levels() == {"a": 0, "b": 1, "c": 2}

    def test_critical_path_length(self):
        g = simple_chain()
        assert g.critical_path_length({"a": 2, "b": 3, "c": 4}) == 9

    def test_critical_path_nodes(self):
        g = simple_chain()
        assert g.critical_path({"a": 2, "b": 3, "c": 4}) == ["a", "b", "c"]

    def test_critical_path_picks_longest_branch(self):
        g = SequencingGraph()
        for op_id in ("a", "b", "c"):
            g.add_operation(Operation(op_id, OperationType.MIX))
        g.add_dependency("a", "c")
        g.add_dependency("b", "c")
        path = g.critical_path({"a": 10, "b": 2, "c": 1})
        assert path == ["a", "c"]

    def test_missing_duration_raises(self):
        g = simple_chain()
        with pytest.raises(ScheduleError):
            g.critical_path_length({"a": 1, "b": 1})

    def test_reconfigurable_operations_filter(self):
        g = SequencingGraph()
        g.add_operation(Operation("d", OperationType.DISPENSE, duration_s=1))
        g.add_operation(Operation("m", OperationType.MIX))
        assert [op.id for op in g.reconfigurable_operations()] == ["m"]

    def test_to_networkx_carries_operations(self):
        g = simple_chain()
        nxg = g.to_networkx()
        assert nxg.nodes["a"]["operation"].type is OperationType.MIX
        assert nxg.number_of_edges() == 2


class TestValidation:
    def test_three_input_mix_rejected(self):
        g = SequencingGraph()
        for op_id in ("a", "b", "c", "m"):
            g.add_operation(Operation(op_id, OperationType.MIX))
        for src in ("a", "b", "c"):
            g.add_dependency(src, "m")
        with pytest.raises(ScheduleError, match="binary"):
            g.validate()

    def test_dispense_with_producer_rejected(self):
        g = SequencingGraph()
        g.add_operation(Operation("m", OperationType.MIX))
        g.add_operation(Operation("d", OperationType.DISPENSE, duration_s=1))
        g.add_dependency("m", "d")
        with pytest.raises(ScheduleError, match="dispense"):
            g.validate()

    def test_valid_graph_passes(self):
        simple_chain().validate()
