"""Regression tests for the two-sided merge/split exemption.

The grid's exemption used to be one-sided — only the *queried* cell had
to lie in the shared merge/split zone — while the plan verifier's rule
is two-sided (both droplets' cells must). Under some fault patterns a
merge approach straddled the zone boundary and the router emitted a
plan the independent verifier rejected (the "known latent quirk" of
DESIGN.md, pre-existing on the seed code). The fix records, per
reservation entry, whether the reserving droplet's origin position is
inside the zone and grants the exemption only when both sides are.

The fault scenarios pinned here are the exact (placement seed, fault
seed) pairs that produced verifier-rejected plans before the fix: pcr
at placement seeds 0 and 7 under 10% street-fault grids. They must now
route fully and verify, identically on the packed and reference
engines.
"""

from __future__ import annotations

import random

import pytest

from repro.assay.catalog import build_assay
from repro.fault.injection import sample_street_faults
from repro.geometry import Point, Rect
from repro.pipeline.context import SynthesisContext
from repro.pipeline.stages import BindStage, PlaceStage, ScheduleStage
from repro.routing import RoutingSynthesizer
from repro.routing.plan import Net, RoutedNet
from repro.routing.reference import ReferenceTimeGrid
from repro.routing.timegrid import TimeGrid


def _place(assay: str, seed: int):
    graph, binding = build_assay(assay)
    context = SynthesisContext(graph=graph, explicit_binding=binding)
    BindStage().run(context)
    ScheduleStage(max_concurrent_ops=3).run(context)
    PlaceStage(seed=seed, compute_fti_report=False).run(context)
    return graph, context.schedule, context.placement_result.placement


#: (assay, placement seed, fault seed) triples that produced
#: verifier-rejected plans under the one-sided exemption.
PREVIOUSLY_REJECTED = [
    ("pcr", 0, 1),
    ("pcr", 0, 2),
    ("pcr", 7, 1),
    ("pcr", 7, 3),
]


@pytest.mark.parametrize("assay,pseed,fseed", PREVIOUSLY_REJECTED)
def test_previously_rejected_fault_patterns_now_verify(assay, pseed, fseed):
    graph, schedule, placement = _place(assay, pseed)
    faults = sample_street_faults(placement, fseed)
    plan = RoutingSynthesizer().synthesize(graph, schedule, placement, faults)
    assert plan.routability == 1.0, f"unrouted nets: {plan.failed}"
    plan.verify()  # was RoutingError before the two-sided fix


@pytest.mark.parametrize("assay,pseed,fseed", PREVIOUSLY_REJECTED[:2])
def test_reference_engine_stays_bit_identical(assay, pseed, fseed):
    """The same two-sided fix lives in routing/reference.py, so packed
    and reference plans stay bit-identical on the pinned scenarios."""
    graph, schedule, placement = _place(assay, pseed)
    faults = sample_street_faults(placement, fseed)
    packed = RoutingSynthesizer().synthesize(graph, schedule, placement, faults)
    reference = RoutingSynthesizer(reference=True).synthesize(
        graph, schedule, placement, faults
    )
    assert packed == reference
    reference.verify()


def _grids():
    return TimeGrid(9, 9), ReferenceTimeGrid(9, 9)


def test_exemption_requires_origin_in_zone_on_both_grids():
    """Unit-level shape of the two-sided rule: a reserved droplet
    sitting *outside* the shared merge zone must block a sibling net's
    in-zone cell, while an in-zone origin must not."""
    zone = Rect(4, 4, 3, 3)
    for grid in _grids():
        grid.add_region("M", zone)
        # Net A parked outside the zone, adjacent to the in-zone cell (4, 4).
        outside = Net("a", Point(3, 4), Point(3, 4), consumer="M")
        grid.reserve(RoutedNet(outside, (Point(3, 4),)), horizon=6)
        probe = Net("b", Point(8, 8), Point(5, 5), consumer="M")
        # One-sided rule would exempt (4, 4) (queried cell in zone);
        # two-sided blocks it because A's origin is outside.
        assert grid.reserved_blocked(Point(4, 4), 2, probe)

    for grid in _grids():
        grid.add_region("M", zone)
        inside = Net("a", Point(4, 4), Point(4, 4), consumer="M")
        grid.reserve(RoutedNet(inside, (Point(4, 4),)), horizon=6)
        probe = Net("b", Point(8, 8), Point(5, 5), consumer="M")
        # Both sides in-zone: the merge exemption applies.
        assert not grid.reserved_blocked(Point(5, 5), 2, probe)
        # Queried cell outside the zone still blocks.
        assert grid.reserved_blocked(Point(4, 3), 2, probe)


def test_mixed_origin_flags_keep_per_origin_granularity():
    """A trajectory entering the zone contributes both out-of-zone and
    in-zone origins to overlapping (step, cell) halos; the out-of-zone
    contribution must keep blocking (per-origin, not per-cell-AND)."""
    zone = Rect(4, 4, 3, 3)
    for grid in _grids():
        grid.add_region("M", zone)
        walk = Net("a", Point(2, 4), Point(4, 4), consumer="M")
        grid.reserve(RoutedNet(walk, (Point(2, 4), Point(3, 4), Point(4, 4))), horizon=8)
        probe = Net("b", Point(8, 8), Point(5, 5), consumer="M")
        # (4, 4) at step 1 is haloed both by the out-of-zone position
        # (3, 4) and the in-zone arrival (4, 4): blocked.
        assert grid.reserved_blocked(Point(4, 4), 1, probe)
        # Deep in-zone cell (5, 5) at a late step is only covered by the
        # parked in-zone tail: exempt.
        assert not grid.reserved_blocked(Point(5, 5), 7, probe)


def test_packed_reference_parity_on_random_soups():
    """Drive both grids with identical obstacle/reservation soups and
    compare every blocked()/reserved_blocked() answer, zone flags
    included."""
    rng = random.Random(42)
    for _ in range(20):
        w = h = 8
        packed, shadow = TimeGrid(w, h), ReferenceTimeGrid(w, h)
        zone = Rect(rng.randint(1, 4), rng.randint(1, 4), 3, 3)
        for g in (packed, shadow):
            g.add_region("M", zone)
        nets = []
        for i in range(4):
            cells = [Point(rng.randint(1, w), rng.randint(1, h))]
            for _ in range(rng.randint(0, 4)):
                p = cells[-1]
                step = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1), (0, 0)])
                q = Point(
                    min(max(p.x + step[0], 1), w), min(max(p.y + step[1], 1), h)
                )
                cells.append(q)
            net = Net(
                f"n{i}", cells[0], cells[-1],
                producer="M" if rng.random() < 0.5 else None,
                consumer="M" if rng.random() < 0.5 else None,
            )
            nets.append(net)
            for g in (packed, shadow):
                g.reserve(RoutedNet(net, tuple(cells)), horizon=10)
        probe = Net("probe", Point(1, 1), Point(w, h), producer="M", consumer="M")
        for step in range(0, 11):
            for x in range(1, w + 1):
                for y in range(1, h + 1):
                    c = Point(x, y)
                    assert packed.reserved_blocked(c, step, probe) == (
                        shadow.reserved_blocked(c, step, probe)
                    ), f"divergence at {c} step {step}"
