"""Tests for the placement cost metrics."""

import pytest

from repro.fault.fti import compute_fti
from repro.modules.library import MIXER_2X2
from repro.placement.cost import AreaCost, FaultAwareCost
from repro.placement.model import PlacedModule, Placement


def pm(op, x=1, y=1, start=0.0, stop=10.0):
    return PlacedModule(op_id=op, spec=MIXER_2X2, x=x, y=y, start=start, stop=stop)


def feasible_placement() -> Placement:
    # Time-disjoint neighbors: 8x4 bounding array, FTI 1.0 (each module
    # can relocate into the other's idle span).
    p = Placement(12, 12)
    p.add(pm("a", x=1, y=1, start=0, stop=10))
    p.add(pm("b", x=5, y=1, start=10, stop=20))
    return p


def fragile_placement() -> Placement:
    # Same 8x4 bounding array but concurrent modules: nothing can move,
    # FTI 0.0.
    p = Placement(12, 12)
    p.add(pm("a", x=1, y=1, start=0, stop=10))
    p.add(pm("b", x=5, y=1, start=0, stop=10))
    return p


def overlapping_placement() -> Placement:
    p = Placement(12, 12)
    p.add(pm("a", x=1, y=1))
    p.add(pm("b", x=2, y=2))
    return p


class TestAreaCost:
    def test_feasible_cost_is_area_plus_pull(self):
        cost = AreaCost(pull_weight=0.0)
        p = feasible_placement()
        assert cost(p) == pytest.approx(p.area_mm2)

    def test_overlap_penalized(self):
        cost = AreaCost(pull_weight=0.0)
        assert cost(overlapping_placement()) > cost(feasible_placement())

    def test_overlap_weight_scales_penalty(self):
        p = overlapping_placement()
        light = AreaCost(overlap_weight=1.0, pull_weight=0.0)(p)
        heavy = AreaCost(overlap_weight=100.0, pull_weight=0.0)(p)
        assert heavy > light

    def test_pull_term_prefers_corner(self):
        cost = AreaCost()
        near = Placement(12, 12)
        near.add(pm("a", x=1, y=1))
        far = Placement(12, 12)
        far.add(pm("a", x=9, y=9))
        assert cost(near) < cost(far)

    def test_pull_term_is_a_tiebreaker_not_an_objective(self):
        # The pull term for one module never outweighs a single cell.
        cost = AreaCost()
        small = Placement(12, 12)
        small.add(pm("a", x=9, y=9))  # max pull, min area
        # One extra column of bounding box (4 cells here) dominates.
        assert cost.pull_weight * (12 + 12) < 2.25

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaCost(overlap_weight=0.0)
        with pytest.raises(ValueError):
            AreaCost(pull_weight=-1.0)

    def test_area_term(self):
        p = feasible_placement()
        assert AreaCost(alpha=2.0).area_term(p) == pytest.approx(2.0 * p.area_mm2)


class TestFaultAwareCost:
    def test_fti_bonus_lowers_cost(self):
        p = feasible_placement()
        oblivious = FaultAwareCost(beta=0.0, fti_method="placements")
        aware = FaultAwareCost(beta=30.0, fti_method="placements")
        assert aware(p) < oblivious(p)

    def test_bonus_matches_fti(self):
        p = feasible_placement()
        beta, gamma = 30.0, 2.0
        cost = FaultAwareCost(beta=beta, ft_gamma=gamma, pull_weight=0.0)
        fti = compute_fti(p).fti
        assert cost(p) == pytest.approx(p.area_mm2 - beta * gamma * fti)

    def test_overlapping_placement_gets_no_bonus(self):
        p = overlapping_placement()
        aware = FaultAwareCost(beta=1000.0, pull_weight=0.0)
        base = AreaCost(pull_weight=0.0)
        assert aware(p) == pytest.approx(base(p))

    def test_higher_fti_wins_at_equal_area(self):
        # Equal 8x4 bounding arrays, same module coordinates — only the
        # time structure differs, so areas and pull terms match exactly
        # and the cost must order by FTI alone.
        tolerant = feasible_placement()   # FTI 1.0
        fragile = fragile_placement()     # FTI 0.0
        assert tolerant.area_cells == fragile.area_cells
        assert compute_fti(tolerant).fti > compute_fti(fragile).fti
        cost = FaultAwareCost(beta=60.0)
        assert cost(tolerant) < cost(fragile)

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            FaultAwareCost(beta=-1.0)

    def test_fti_report_accessor(self):
        p = feasible_placement()
        report = FaultAwareCost(beta=10).fti_report(p)
        assert 0 <= report.fti <= 1
