"""Tests for the on-line testing substrate (refs [13]/[14])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.grid.array import MicrofluidicArray
from repro.modules.library import MIXER_2X2
from repro.placement.model import PlacedModule, Placement
from repro.testing.detector import (
    DRY_CAPACITANCE_PF,
    WET_CAPACITANCE_PF,
    CapacitiveSensor,
)
from repro.testing.localize import FaultLocalizer
from repro.testing.online import OnlineTester
from repro.testing.test_droplet import TestDroplet, free_cell_paths, snake_path


class TestSnakePath:
    def test_covers_every_cell_once(self):
        path = snake_path(5, 4)
        assert len(path) == 20
        assert len(set(path)) == 20

    def test_adjacent_steps(self):
        path = snake_path(6, 3)
        for a, b in zip(path, path[1:]):
            assert a.manhattan_distance(b) == 1

    def test_starts_bottom_left(self):
        assert snake_path(4, 4)[0] == Point(1, 1)

    def test_top_start_variant(self):
        assert snake_path(4, 4, start_bottom_left=False)[0] == Point(1, 4)

    def test_single_cell(self):
        assert snake_path(1, 1) == [Point(1, 1)]

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            snake_path(0, 3)


class TestTestDroplet:
    def test_healthy_array_passes(self):
        array = MicrofluidicArray(4, 4)
        outcome = TestDroplet().walk(array, snake_path(4, 4))
        assert outcome.passed
        assert outcome.steps_taken == 16

    def test_stalls_at_faulty_cell(self):
        array = MicrofluidicArray(4, 4)
        path = snake_path(4, 4)
        array.mark_faulty(path[5])
        outcome = TestDroplet().walk(array, path)
        assert not outcome.passed
        assert outcome.stalled_before == path[5]
        assert outcome.steps_taken == 5

    def test_faulty_start_cell(self):
        array = MicrofluidicArray(3, 3)
        array.mark_faulty((1, 1))
        outcome = TestDroplet().walk(array, snake_path(3, 3))
        assert not outcome.passed and outcome.steps_taken == 0

    def test_non_adjacent_path_rejected(self):
        array = MicrofluidicArray(4, 4)
        with pytest.raises(ValueError, match="adjacent"):
            TestDroplet().walk(array, [Point(1, 1), Point(3, 1)])

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            TestDroplet().walk(MicrofluidicArray(2, 2), [])


class TestCapacitiveSensor:
    def test_threshold_must_separate_wet_dry(self):
        with pytest.raises(ValueError):
            CapacitiveSensor(threshold_pf=DRY_CAPACITANCE_PF / 2)
        with pytest.raises(ValueError):
            CapacitiveSensor(threshold_pf=WET_CAPACITANCE_PF * 2)

    def test_observation_matches_outcome(self):
        array = MicrofluidicArray(3, 3)
        outcome = TestDroplet().walk(array, snake_path(3, 3))
        obs = CapacitiveSensor().observe(outcome)
        assert obs.droplet_arrived
        assert obs.capacitance_pf == WET_CAPACITANCE_PF

    def test_failed_walk_reads_dry(self):
        array = MicrofluidicArray(3, 3)
        array.mark_faulty((3, 3))
        outcome = TestDroplet().walk(array, snake_path(3, 3))
        obs = CapacitiveSensor().observe(outcome)
        assert not obs.droplet_arrived
        assert obs.capacitance_pf == DRY_CAPACITANCE_PF


class TestFaultLocalizer:
    def test_clean_path_reports_none(self):
        array = MicrofluidicArray(4, 4)
        result = FaultLocalizer().localize(array, snake_path(4, 4))
        assert not result.fault_found
        assert result.runs == 1

    @given(idx=st.integers(0, 24))
    @settings(max_examples=25, deadline=None)
    def test_finds_exact_cell(self, idx):
        array = MicrofluidicArray(5, 5)
        path = snake_path(5, 5)
        array.mark_faulty(path[idx])
        result = FaultLocalizer().localize(array, path)
        assert result.faulty_cell == path[idx]

    def test_logarithmic_run_count(self):
        array = MicrofluidicArray(8, 8)
        path = snake_path(8, 8)  # 64 cells
        array.mark_faulty(path[37])
        result = FaultLocalizer().localize(array, path)
        # 1 full run + ceil(log2(64)) = 6 probes, plus slack for rounding.
        assert result.runs <= 8


class TestFreeCellPaths:
    def build_placement(self) -> Placement:
        p = Placement(8, 8)
        p.add(PlacedModule("a", MIXER_2X2, x=1, y=1, start=0, stop=10))
        return p

    def test_paths_cover_all_free_cells(self):
        p = self.build_placement()
        paths = free_cell_paths(p, at_time=5)
        covered = {cell for path in paths for cell in path}
        occupied = {cell for cell in p.get("a").footprint.cells()}
        everything = {Point(x, y) for x in range(1, 9) for y in range(1, 9)}
        assert covered == everything - occupied

    def test_paths_avoid_active_modules(self):
        p = self.build_placement()
        for path in free_cell_paths(p, at_time=5):
            for cell in path:
                assert not p.get("a").footprint.contains_point(cell)

    def test_inactive_modules_are_testable(self):
        p = self.build_placement()
        paths = free_cell_paths(p, at_time=15)  # module finished
        covered = {cell for path in paths for cell in path}
        assert Point(2, 2) in covered

    def test_paths_are_walkable(self):
        p = self.build_placement()
        for path in free_cell_paths(p, at_time=5):
            for a, b in zip(path, path[1:]):
                assert a.manhattan_distance(b) == 1


class TestOnlineTester:
    def test_plan_and_execute_clean(self):
        p = Placement(6, 6)
        p.add(PlacedModule("a", MIXER_2X2, x=1, y=1, start=0, stop=10))
        array = MicrofluidicArray(6, 6)
        tester = OnlineTester()
        plan = tester.plan(p, at_time=5)
        report = tester.execute(array, plan)
        assert report.faults_found == ()

    def test_finds_fault_on_free_cell(self):
        p = Placement(6, 6)
        p.add(PlacedModule("a", MIXER_2X2, x=1, y=1, start=0, stop=10))
        array = MicrofluidicArray(6, 6)
        array.mark_faulty((6, 6))
        tester = OnlineTester()
        report = tester.execute(array, tester.plan(p, at_time=5))
        assert Point(6, 6) in report.faults_found

    def test_plan_covers_free_cells(self):
        p = Placement(6, 6)
        p.add(PlacedModule("a", MIXER_2X2, x=1, y=1, start=0, stop=10))
        plan = OnlineTester().plan(p, at_time=5)
        assert Point(6, 6) in plan.cells_covered
        assert Point(2, 2) not in plan.cells_covered

    def test_coverage_over_schedule(self):
        p = Placement(6, 6)
        p.add(PlacedModule("a", MIXER_2X2, x=1, y=1, start=0, stop=10))
        p.add(PlacedModule("b", MIXER_2X2, x=3, y=3, start=10, stop=20))
        plans = OnlineTester().coverage_over_schedule(p)
        assert set(plans) == {0, 10}
        # Cells under module a are testable once a finishes (t=10 plan).
        assert Point(1, 1) in plans[10].cells_covered
