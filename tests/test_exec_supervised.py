"""Supervision semantics of :class:`repro.exec.SupervisedPool`.

Every supervision path is driven by deterministic chaos injection
(:mod:`repro.testing.chaos`) rather than real faults, so the suite is
reproducible on a single-core box. Sizes are deliberately tiny — the
pool's behaviour, not its throughput, is under test.
"""

from __future__ import annotations

import pytest

from repro.exec import (
    STATUS_CRASHED,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_RETRIED_OK,
    STATUS_TIMEOUT,
    SupervisedPool,
    TaskOutcome,
)
from repro.testing.chaos import ChaosPolicy
from repro.util.errors import PipelineError


def square(x):
    return x * x


def square_or_infeasible(x):
    if x % 2:
        raise PipelineError(f"odd input {x}")
    return x * x


def buggy(x):
    raise KeyError(x)


def slow_square(args):
    import time

    x, delay = args
    time.sleep(delay)
    return x * x


def quiet_pool(**kw):
    kw.setdefault("chaos", ChaosPolicy.none())
    kw.setdefault("backoff_base", 0.0)
    return SupervisedPool(**kw)


class TestSerialPath:
    def test_jobs_one_runs_in_process(self):
        pool = quiet_pool(jobs=1)
        outcomes = pool.map(square, [1, 2, 3])
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.status == STATUS_OK and o.attempts == 1 for o in outcomes)
        assert pool.rebuilds == 0 and not pool.degraded

    def test_single_task_short_circuits_to_serial(self):
        outcomes = quiet_pool(jobs=4).map(square, [5])
        assert [o.value for o in outcomes] == [25]

    def test_repro_error_is_infeasible_not_crash(self):
        outcomes = quiet_pool(jobs=1).map(square_or_infeasible, [2, 3])
        assert outcomes[0].status == STATUS_OK
        assert outcomes[1].status == STATUS_INFEASIBLE
        assert "PipelineError" in outcomes[1].error
        assert outcomes[1].value is None and not outcomes[1].ok

    def test_non_library_exception_is_crashed(self):
        outcomes = quiet_pool(jobs=1).map(buggy, [7])
        assert outcomes[0].status == STATUS_CRASHED
        assert "KeyError" in outcomes[0].error

    def test_empty_task_list(self):
        assert quiet_pool(jobs=2).map(square, []) == []

    def test_default_keys_are_indices(self):
        outcomes = quiet_pool(jobs=1).map(square, [1, 2])
        assert [o.key for o in outcomes] == ["0", "1"]


class TestValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            SupervisedPool(jobs=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError, match="task_timeout"):
            SupervisedPool(task_timeout=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisedPool(max_retries=-1)

    def test_rejects_key_count_mismatch(self):
        with pytest.raises(ValueError, match="keys"):
            quiet_pool(jobs=1).map(square, [1, 2], keys=["only-one"])


class TestParallelSupervision:
    def test_plain_parallel_map(self):
        pool = quiet_pool(jobs=2)
        outcomes = pool.map(square, list(range(5)))
        assert [o.value for o in outcomes] == [0, 1, 4, 9, 16]
        assert [o.index for o in outcomes] == list(range(5))
        assert pool.rebuilds == 0

    def test_infeasible_does_not_burn_retries(self):
        pool = quiet_pool(jobs=2, max_retries=3)
        outcomes = pool.map(square_or_infeasible, [2, 3, 4])
        assert [o.status for o in outcomes] == [
            STATUS_OK, STATUS_INFEASIBLE, STATUS_OK,
        ]
        assert outcomes[1].attempts == 1  # deterministic verdict: no retry

    def test_worker_kill_is_retried_then_ok(self):
        chaos = ChaosPolicy.explicit_plan({(1, 0): "worker-kill"})
        pool = quiet_pool(jobs=2, chaos=chaos)
        outcomes = pool.map(square, [1, 2, 3])
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert outcomes[1].status == STATUS_RETRIED_OK
        assert outcomes[1].attempts == 2
        assert pool.rebuilds >= 1

    def test_unpicklable_exception_is_retried(self):
        chaos = ChaosPolicy.explicit_plan({(0, 0): "unpicklable"})
        outcomes = quiet_pool(jobs=2, chaos=chaos).map(square, [4, 5])
        assert outcomes[0].status == STATUS_RETRIED_OK
        assert outcomes[0].value == 16

    def test_retry_exhaustion_is_crashed_siblings_survive(self):
        chaos = ChaosPolicy.explicit_plan(
            {(0, a): "worker-kill" for a in range(3)}
        )
        pool = quiet_pool(jobs=2, max_retries=2, chaos=chaos)
        outcomes = pool.map(square, [1, 2, 3])
        assert outcomes[0].status == STATUS_CRASHED
        assert outcomes[0].attempts == 3
        assert [o.value for o in outcomes[1:]] == [4, 9]
        assert all(o.ok for o in outcomes[1:])

    def test_watchdog_kills_hung_worker(self):
        chaos = ChaosPolicy.explicit_plan({(0, 0): "timeout"}, sleep_s=30.0)
        pool = quiet_pool(jobs=2, task_timeout=0.5, max_retries=1, chaos=chaos)
        outcomes = pool.map(slow_square, [(3, 0.0), (4, 0.0)])
        # attempt 0 hangs and is killed; attempt 1 is chaos-free and lands.
        assert outcomes[0].status == STATUS_RETRIED_OK
        assert outcomes[0].value == 9
        assert outcomes[1].ok and outcomes[1].value == 16
        assert pool.rebuilds >= 1

    def test_timeout_exhaustion_reports_timeout(self):
        chaos = ChaosPolicy.explicit_plan(
            {(0, a): "timeout" for a in range(2)}, sleep_s=30.0
        )
        pool = quiet_pool(jobs=2, task_timeout=0.4, max_retries=1, chaos=chaos)
        outcomes = pool.map(square, [1, 2])
        assert outcomes[0].status == STATUS_TIMEOUT
        assert "deadline" in outcomes[0].error
        assert outcomes[1].ok

    def test_degrades_to_serial_after_pool_failure_limit(self):
        # Every first attempt dies; with the rebuild budget at 0 the
        # pool must degrade and drain the remaining tasks in-process,
        # where chaos is inert — the campaign still completes.
        chaos = ChaosPolicy.explicit_plan(
            {(i, 0): "worker-kill" for i in range(4)}
        )
        pool = quiet_pool(jobs=2, pool_failure_limit=0, chaos=chaos)
        outcomes = pool.map(square, [1, 2, 3, 4])
        assert pool.degraded
        assert [o.value for o in outcomes] == [1, 4, 9, 16]


class TestDeterminismContract:
    def test_results_invariant_under_jobs_and_chaos(self):
        tasks = list(range(6))
        baseline = [o.value for o in quiet_pool(jobs=1).map(square, tasks)]
        chaos = ChaosPolicy.explicit_plan(
            {(1, 0): "worker-kill", (4, 0): "unpicklable"}
        )
        for pool in (quiet_pool(jobs=2), quiet_pool(jobs=3, chaos=chaos)):
            outcomes = pool.map(square, tasks)
            assert [o.value for o in outcomes] == baseline
            assert [o.index for o in outcomes] == tasks

    def test_seeded_chaos_converges_to_clean_result(self):
        tasks = list(range(5))
        clean = [o.value for o in quiet_pool(jobs=2).map(square, tasks)]
        chaos = ChaosPolicy.seeded(
            ["worker-kill", "unpicklable"], seed=11, rate=0.6
        )
        stormy = quiet_pool(jobs=2, max_retries=2, chaos=chaos).map(square, tasks)
        assert all(o.ok for o in stormy)
        assert [o.value for o in stormy] == clean


class TestOutcomePlumbing:
    def test_on_outcome_sees_every_task_once(self):
        seen = []
        outcomes = quiet_pool(jobs=2).map(
            square, [1, 2, 3], keys=["a", "b", "c"], on_outcome=seen.append
        )
        assert sorted(o.index for o in seen) == [0, 1, 2]
        assert {o.key for o in seen} == {"a", "b", "c"}
        assert {id(o) for o in seen} == {id(o) for o in outcomes}

    def test_to_dict_is_json_safe_summary(self):
        out = TaskOutcome(
            index=3, key="pcr|auto|center", status=STATUS_TIMEOUT,
            attempts=2, error="deadline 1s exceeded", wall_s=1.25,
        )
        d = out.to_dict()
        assert d == {
            "index": 3, "key": "pcr|auto|center", "status": STATUS_TIMEOUT,
            "attempts": 2, "error": "deadline 1s exceeded", "wall_s": 1.25,
        }
        assert "value" not in d
