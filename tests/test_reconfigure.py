"""Tests for the partial reconfiguration engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault.fti import compute_fti
from repro.fault.reconfigure import (
    STRATEGY_FIRST,
    PartialReconfigurer,
    Relocation,
)
from repro.geometry import Point
from repro.modules.library import MIXER_2X2, MIXER_LINEAR_1X4
from repro.placement.model import PlacedModule, Placement
from repro.util.errors import ReconfigurationError


def pm(op, spec=MIXER_2X2, x=1, y=1, start=0.0, stop=10.0, rotated=False):
    return PlacedModule(op_id=op, spec=spec, x=x, y=y, start=start, stop=stop, rotated=rotated)


class TestAffectedModules:
    def test_finds_containing_module(self):
        p = Placement(10, 10)
        p.add(pm("a", x=1, y=1))
        r = PartialReconfigurer()
        assert [m.op_id for m in r.affected_modules(p, [Point(2, 2)])] == ["a"]
        assert r.affected_modules(p, [Point(9, 9)]) == []

    def test_at_time_filters(self):
        p = Placement(10, 10)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=1, y=1, start=10, stop=20))
        r = PartialReconfigurer()
        assert [m.op_id for m in r.affected_modules(p, [Point(1, 1)], at_time=5)] == ["a"]
        both = r.affected_modules(p, [Point(1, 1)])
        assert {m.op_id for m in both} == {"a", "b"}


class TestRelocation:
    def test_apply_moves_module_off_fault(self):
        p = Placement(8, 8)
        p.add(pm("a", x=1, y=1))
        fault = Point(2, 2)
        updated, plan = PartialReconfigurer().apply(p, fault)
        assert plan.moved_ops == ("a",)
        assert not updated.get("a").footprint.contains_point(fault)
        updated.validate()

    def test_unaffected_modules_untouched(self):
        p = Placement(14, 8)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=6, y=1, start=5, stop=12))
        updated, plan = PartialReconfigurer().apply(p, Point(2, 2))
        assert updated.get("b") == p.get("b")
        assert "b" in plan.untouched

    def test_new_site_avoids_concurrent_modules(self):
        p = Placement(14, 8)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=6, y=1, start=5, stop=12))
        updated, _ = PartialReconfigurer().apply(p, Point(2, 2))
        assert not updated.get("a").footprint.intersects(updated.get("b").footprint)

    def test_impossible_relocation_raises(self):
        p = Placement(4, 4)
        p.add(pm("a", x=1, y=1))  # fills the core
        with pytest.raises(ReconfigurationError):
            PartialReconfigurer().apply(p, Point(2, 2))

    def test_fault_on_unused_cell_is_noop(self):
        p = Placement(10, 10)
        p.add(pm("a", x=1, y=1))
        updated, plan = PartialReconfigurer().apply(p, Point(10, 10))
        assert plan.relocations == ()
        assert updated.get("a") == p.get("a")

    def test_nearest_strategy_minimizes_distance(self):
        p = Placement(12, 4)
        p.add(pm("a", x=1, y=1))
        _, plan_near = PartialReconfigurer().apply(p, Point(1, 1))
        _, plan_any = PartialReconfigurer(strategy=STRATEGY_FIRST).apply(p, Point(1, 1))
        assert plan_near.total_migration_distance <= plan_any.total_migration_distance

    def test_extra_faults_avoided(self):
        p = Placement(12, 4)
        p.add(pm("a", x=1, y=1))
        extra = Point(6, 2)
        updated, _ = PartialReconfigurer().apply(p, Point(1, 1), extra_faults=[extra])
        assert not updated.get("a").footprint.contains_point(extra)

    def test_only_ops_filter(self):
        p = Placement(10, 10)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=1, y=1, start=10, stop=20))
        _, plan = PartialReconfigurer().apply(p, Point(1, 1), only_ops=["b"])
        assert plan.moved_ops == ("b",)

    def test_rotation_disabled(self):
        p = Placement(9, 3)
        p.add(pm("a", spec=MIXER_LINEAR_1X4, x=1, y=1))  # 6x3 footprint
        # Space to the right is 3x3 only; without rotation, shifting
        # right reusing own cells still works (window always 6 wide).
        updated, plan = PartialReconfigurer(allow_rotation=False).apply(p, Point(1, 1))
        assert not updated.get("a").rotated

    def test_relocation_distance_property(self):
        old = pm("a", x=1, y=1)
        new = pm("a", x=4, y=3)
        assert Relocation("a", old, new).distance == 5

    def test_multi_module_fault_both_relocated(self):
        p = Placement(10, 10)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=1, y=1, start=10, stop=20))
        updated, plan = PartialReconfigurer().apply(p, Point(2, 2))
        assert set(plan.moved_ops) == {"a", "b"}
        for op in ("a", "b"):
            assert not updated.get(op).footprint.contains_point(Point(2, 2))
        updated.validate()

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            PartialReconfigurer(strategy="teleport")


class TestAgreementWithFTI:
    """Reconfiguration success on cell f must equal f's C-coveredness."""

    @given(x=st.integers(1, 9), y=st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_covered_iff_reconfigurable(self, x, y, sa_result):
        placement = sa_result.placement
        w, h = placement.array_dims()
        if x > w or y > h:
            return
        report = compute_fti(placement)
        reconfigurer = PartialReconfigurer()
        try:
            reconfigurer.apply(placement, Point(x, y))
            survived = True
        except ReconfigurationError:
            survived = False
        assert survived == report.is_covered((x, y))
