"""Tests for the experiment harnesses (paper tables and figures)."""

import pytest

from repro.experiments import paper_constants as paper
from repro.experiments.fig2 import demonstrate_3d_reduction
from repro.experiments.fig4 import run_reconfiguration_example
from repro.experiments.fig5 import describe_pcr_graph
from repro.experiments.pcr import pcr_case_study, verify_table1


class TestTable1:
    def test_library_matches_paper_exactly(self):
        assert verify_table1() == []

    def test_rows_cover_all_ops(self):
        rows = pcr_case_study().table1_rows()
        assert [r[0] for r in rows] == ["M1", "M2", "M3", "M4", "M5", "M6", "M7"]

    def test_table_text_renders(self):
        text = pcr_case_study().table1_text()
        assert "2x2 electrode array" in text
        assert "10s" in text


class TestFig5:
    def test_structure(self):
        facts = describe_pcr_graph()
        assert facts.node_count == 7
        assert facts.edge_count == 6
        assert facts.is_balanced_binary_tree

    def test_critical_path(self):
        facts = describe_pcr_graph()
        # M3 (6) -> M6 (10) -> M7 (3) = 19 s.
        assert facts.critical_path == ("M3", "M6", "M7")


class TestFig6Schedule:
    def test_makespan_is_critical_path(self):
        study = pcr_case_study()
        # The concurrency cap costs no makespan on PCR.
        assert study.makespan == 19.0

    def test_peak_demand_fits_paper_array(self):
        study = pcr_case_study()
        assert study.peak_cell_demand <= 63

    def test_figure6_rows_sorted(self):
        rows = pcr_case_study().figure6_rows()
        starts = [s for _, s, _ in rows]
        assert starts == sorted(starts)

    def test_schedule_respects_dependencies(self):
        study = pcr_case_study()
        study.schedule.validate_precedence(study.graph)


class TestFig2:
    def test_cuts_are_overlap_free(self):
        demo = demonstrate_3d_reduction(seed=11)
        assert all(demo.cut_is_overlap_free(t) for t in demo.time_planes)

    def test_box_volume_is_module_work(self):
        demo = demonstrate_3d_reduction(seed=11)
        # sum of footprint x duration over Table 1:
        # 16*10+18*5+20*6+18*5+18*5+16*10+24*3 = 782 cell-seconds.
        assert demo.total_box_volume == pytest.approx(782.0)

    def test_every_module_boxed(self):
        demo = demonstrate_3d_reduction(seed=11)
        assert set(demo.boxes) == {"M1", "M2", "M3", "M4", "M5", "M6", "M7"}

    def test_cut_contents_match_schedule(self):
        demo = demonstrate_3d_reduction(seed=11)
        study = pcr_case_study()
        for t in demo.time_planes:
            assert set(demo.cuts[t]) == set(study.schedule.active_at(t))


class TestFig4:
    def test_reconfiguration_example(self):
        exp = run_reconfiguration_example(seed=23)
        assert exp.moved_modules  # at least one module relocated
        assert exp.migration_distance >= 1
        exp.placement_after.validate()
        for op in exp.moved_modules:
            assert not exp.placement_after.get(op).footprint.contains_point(
                exp.faulty_cell
            )

    def test_initial_placement_is_feasible(self):
        exp = run_reconfiguration_example(seed=23)
        assert exp.initial_placement.is_feasible()

    def test_untouched_modules_stay(self):
        exp = run_reconfiguration_example(seed=23)
        for op in exp.plan.untouched:
            assert exp.placement_after.get(op) == exp.placement_before.get(op)


class TestPaperConstants:
    def test_cell_area(self):
        assert paper.CELL_AREA_MM2 == pytest.approx(2.25)

    def test_areas_consistent_with_cells(self):
        assert paper.GREEDY_AREA_CELLS * paper.CELL_AREA_MM2 == pytest.approx(
            paper.GREEDY_AREA_MM2
        )
        assert paper.MIN_AREA_CELLS * paper.CELL_AREA_MM2 == pytest.approx(
            paper.MIN_AREA_MM2
        )
        for beta, (area, _) in paper.TABLE2.items():
            assert (area / paper.CELL_AREA_MM2) == pytest.approx(
                round(area / paper.CELL_AREA_MM2)
            ), f"beta={beta} area is not a whole number of cells"

    def test_table2_monotone(self):
        areas = [a for a, _ in paper.TABLE2.values()]
        ftis = [f for _, f in paper.TABLE2.values()]
        assert areas == sorted(areas)
        assert ftis == sorted(ftis)

    def test_min_area_fti_matches_covered_count(self):
        assert paper.MIN_AREA_COVERED_CELLS / paper.MIN_AREA_CELLS == pytest.approx(
            paper.MIN_AREA_FTI, abs=5e-4
        )
