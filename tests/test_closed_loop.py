"""Closed-loop fault tolerance: detection-driven recovery end to end.

The acceptance properties this file pins:

* zero-noise closed-loop sensing is **bit-identical** to the oracle
  reference (modulo wall-clock recovery timings, which no two runs
  share);
* every bundled assay completes closed-loop — imperfect sensing, no
  oracle — under a single mid-assay permanent fault;
* false alarms are dismissed by the confirmation re-probe and never
  abort a fault-free run;
* a fault every probe missed is caught by the stuck-droplet watchdog
  after the verdict replay exposes it;
* ladder traces follow the rung order and the Monte-Carlo sweep's
  closed-loop records are jobs-invariant.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.catalog import BUNDLED_ASSAYS, build_assay
from repro.fault.models import FAIL, FaultEvent
from repro.geometry import Point
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.recovery import (
    RECOVERY_RUNGS,
    ClosedLoopController,
    MonteCarloRecoverySweep,
    OnlineRecoveryEngine,
)
from repro.recovery.engine import pick_fault_cell
from repro.synthesis.flow import SynthesisFlow
from repro.testing import CapacitiveSensor
from repro.util.errors import RecoveryError

#: Wall-clock fields: everything else in the outcome dicts must be
#: bit-identical between the oracle and the zero-noise closed loop.
_TIMING_KEYS = frozenset({"recovery_s", "replace_s", "reroute_s"})


def _strip_timing(value):
    if isinstance(value, dict):
        return {
            k: _strip_timing(v)
            for k, v in value.items()
            if k not in _TIMING_KEYS and k != "detection_mode"
        }
    if isinstance(value, list):
        return [_strip_timing(v) for v in value]
    return value


@lru_cache(maxsize=None)
def _routed(assay: str):
    graph, explicit = build_assay(assay)
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=7),
        route=True,
    )
    return flow.run(graph, explicit_binding=explicit)


def _engine() -> OnlineRecoveryEngine:
    return OnlineRecoveryEngine(annealing=AnnealingParams.fast())


def _single_fault(result, fraction: float, target: str, seed: int):
    engine = _engine()
    t = fraction * result.makespan
    checkpoint = engine.checkpoint_of(result, t)
    cell = pick_fault_cell(result, checkpoint, target, rng=seed)
    return (FaultEvent(t, cell, FAIL),)


class TestOracleEquivalence:
    @given(
        fraction=st.sampled_from((0.25, 0.4, 0.6)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=5, deadline=None)
    def test_zero_noise_closed_loop_is_the_oracle(self, fraction, seed):
        """Perfect sensor + single vote == continuous monitoring: the
        closed loop must reproduce the oracle reference bit-identically
        (wall-clock timings stripped)."""
        result = _routed("pcr")
        events = _single_fault(result, fraction, "pending-module", seed)
        controller = ClosedLoopController(engine=_engine())
        oracle = controller.run(result, events, seed=seed, mode="oracle")
        closed = controller.run(result, events, seed=seed, mode="closed-loop")
        assert oracle.completed
        assert _strip_timing(oracle.to_dict()) == _strip_timing(closed.to_dict())

    def test_default_controller_sensing_is_perfect(self):
        controller = ClosedLoopController(engine=_engine())
        assert controller.sensor.is_perfect
        assert controller.votes == 1

    def test_noisy_default_votes_are_three(self):
        controller = ClosedLoopController(
            engine=_engine(), sensor=CapacitiveSensor(false_positive_rate=0.1)
        )
        assert controller.votes == 3

    def test_even_votes_rejected(self):
        with pytest.raises(RecoveryError, match="odd"):
            ClosedLoopController(engine=_engine(), votes=2)

    def test_unknown_mode_rejected(self):
        controller = ClosedLoopController(engine=_engine())
        with pytest.raises(RecoveryError, match="detection mode"):
            controller.run(_routed("pcr"), (), mode="telepathy")


class TestClosedLoopCompletion:
    @pytest.mark.parametrize("assay", sorted(BUNDLED_ASSAYS))
    def test_every_bundled_assay_completes_under_lossy_sensing(self, assay):
        """The headline acceptance: imperfect sensing, no oracle, one
        permanent mid-assay fault — every bundled assay still finishes."""
        result = _routed(assay)
        events = _single_fault(result, 0.5, "pending-module", seed=5)
        controller = ClosedLoopController(
            engine=_engine(),
            sensor=CapacitiveSensor(
                false_positive_rate=0.02, false_negative_rate=0.05
            ),
        )
        outcome = controller.run(result, events, seed=42, mode="closed-loop")
        assert outcome.completed, (assay, outcome.reason)
        assert not outcome.aborted
        assert outcome.realized_makespan_s >= outcome.nominal_makespan_s

    def test_fault_free_noisy_run_never_aborts(self):
        """False alarms are recorded and dismissed, never acted into an
        abort: a healthy chip with a jumpy sensor still finishes."""
        result = _routed("pcr")
        controller = ClosedLoopController(
            engine=_engine(),
            sensor=CapacitiveSensor(false_positive_rate=0.25),
        )
        for seed in (1, 9, 33):
            outcome = controller.run(result, (), seed=seed)
            assert outcome.completed and not outcome.aborted, outcome.reason
            assert all(d.dismissed for d in outcome.false_alarms)
            assert outcome.makespan_penalty_s == 0.0

    def test_watchdog_catches_a_fault_every_probe_missed(self):
        """A near-blind sensor misses a 2x2 dead block; the verdict
        replay fails, the stuck-droplet watchdog names the earliest
        undetected fault, and the ladder still lands the assay."""
        result = _routed("dilution")
        t = 0.3 * result.makespan
        engine = _engine()
        checkpoint = engine.checkpoint_of(result, t)
        seed_cell = pick_fault_cell(result, checkpoint, "pending-module", rng=5)
        width, height = result.placement_result.placement.array_dims()
        block = sorted(
            {
                Point(min(seed_cell.x + dx, width), min(seed_cell.y + dy, height))
                for dx in (0, 1)
                for dy in (0, 1)
            }
        )
        events = tuple(FaultEvent(t, c, FAIL) for c in block)
        blind = ClosedLoopController(
            engine=engine,
            sensor=CapacitiveSensor(false_negative_rate=0.99),
            votes=3,
        )
        outcome = blind.run(result, events, seed=42)
        assert outcome.completed, outcome.reason
        assert outcome.watchdog_rounds >= 1
        assert any(d.via == "watchdog" for d in outcome.detections)
        # Watchdog detections are real faults with the charged latency.
        for det in outcome.detections:
            if det.via == "watchdog":
                assert det.true_cell == det.believed_cell
                assert det.latency_s is not None and det.latency_s > 0


class TestLadder:
    def test_trace_follows_rung_order(self):
        """Rung attempts appear in ladder order, the last one succeeds,
        and the outcome's rung names the step that won."""
        result = _routed("pcr")
        events = _single_fault(result, 0.5, "pending-module", seed=3)
        outcome = ClosedLoopController(engine=_engine()).run(
            result, events, seed=3, mode="oracle"
        )
        assert outcome.completed and outcome.recoveries
        order = {rung: i for i, rung in enumerate(RECOVERY_RUNGS)}
        for recovery in outcome.recoveries:
            trace = recovery.ladder_trace
            assert trace, "every recovery carries its rung-by-rung trace"
            indices = [order[s.rung] for s in trace]
            assert indices == sorted(indices)
            assert trace[-1].succeeded and trace[-1].rung == recovery.rung
            assert all(not s.succeeded for s in trace[:-1])

    def test_street_fault_stops_at_the_first_rung(self):
        """A fault on open street never touches a module footprint, so
        the cheapest rung (suffix re-route) must be the one that lands."""
        result = _routed("pcr")
        events = _single_fault(result, 0.5, "street", seed=3)
        outcome = ClosedLoopController(engine=_engine()).run(
            result, events, seed=3, mode="oracle"
        )
        assert outcome.completed
        assert outcome.final_rung == "reroute"

    def test_detection_latencies_only_for_real_faults(self):
        result = _routed("pcr")
        events = _single_fault(result, 0.4, "pending-module", seed=8)
        outcome = ClosedLoopController(engine=_engine()).run(
            result, events, seed=8, mode="oracle"
        )
        assert outcome.detection_latencies == (0.0,)


class TestSweepClosedLoop:
    def test_closed_loop_records_are_jobs_invariant(self):
        """Structural record fields must be identical for any --jobs;
        only wall-clock timings may differ."""
        def run(jobs: int):
            sweep = MonteCarloRecoverySweep(
                assays=("pcr",),
                time_fractions=(0.5,),
                targets=("street", "pending-module"),
                annealing=AnnealingParams.fast(),
                recovery_annealing=AnnealingParams.fast(),
                seed=13,
                detection="closed-loop",
                fault_model="permanent",
                sensor_fpr=0.05,
                sensor_fnr=0.1,
            )
            return sweep.run(jobs=jobs)

        serial, parallel = run(1), run(2)
        stripped = [
            [
                {
                    k: v
                    for k, v in r.to_dict().items()
                    if k not in _TIMING_KEYS
                }
                for r in report.records
            ]
            for report in (serial, parallel)
        ]
        assert stripped[0] == stripped[1]
        assert serial.rung_frequencies == parallel.rung_frequencies

    def test_rung_frequencies_cover_recovered_records(self):
        sweep = MonteCarloRecoverySweep(
            assays=("pcr",),
            time_fractions=(0.5,),
            targets=("street",),
            annealing=AnnealingParams.fast(),
            recovery_annealing=AnnealingParams.fast(),
            seed=13,
            detection="closed-loop",
            fault_model="intermittent",
        )
        report = sweep.run(jobs=1)
        recovered = sum(1 for r in report.records if r.recovered)
        assert sum(report.rung_frequencies.values()) == recovered
        assert set(report.rung_frequencies) <= set(RECOVERY_RUNGS) | {"abort"}

    def test_invalid_axes_rejected(self):
        with pytest.raises(RecoveryError, match="fault model"):
            MonteCarloRecoverySweep(assays=("pcr",), fault_model="meteor")
        with pytest.raises(RecoveryError, match="detection"):
            MonteCarloRecoverySweep(assays=("pcr",), detection="telepathy")
