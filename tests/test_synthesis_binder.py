"""Unit tests for resource binding."""

import pytest

from repro.assay.graph import SequencingGraph
from repro.assay.operations import Operation, OperationType
from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.synthesis.binder import ResourceBinder
from repro.util.errors import BindingError


def tiny_graph() -> SequencingGraph:
    g = SequencingGraph()
    g.add_operation(Operation("mix", OperationType.MIX))
    g.add_operation(Operation("det", OperationType.DETECT))
    g.add_dependency("mix", "det")
    return g


class TestExplicitBinding:
    def test_pcr_table1(self):
        g = build_pcr_mixing_graph()
        binding = ResourceBinder().bind(g, explicit=PCR_BINDING)
        assert binding.spec_for("M1").name == "mixer-2x2"
        assert binding.spec_for("M7").name == "mixer-2x4"
        assert len(binding) == 7

    def test_unknown_op_in_explicit_map(self):
        g = tiny_graph()
        with pytest.raises(BindingError, match="unknown operations"):
            ResourceBinder().bind(g, explicit={"ghost": "mixer-2x2"})

    def test_unknown_spec_name(self):
        g = tiny_graph()
        with pytest.raises(BindingError, match="no module spec"):
            ResourceBinder().bind(g, explicit={"mix": "warp-drive"})

    def test_explicit_overrides_hardware_hint(self):
        g = SequencingGraph()
        g.add_operation(Operation("m", OperationType.MIX, hardware="mixer-2x2"))
        binding = ResourceBinder().bind(g, explicit={"m": "mixer-2x4"})
        assert binding.spec_for("m").name == "mixer-2x4"


class TestStrategyBinding:
    def test_fastest_picks_min_duration(self):
        binding = ResourceBinder().bind(tiny_graph(), strategy=ResourceBinder.FASTEST)
        assert binding.spec_for("mix").name == "mixer-2x4"

    def test_smallest_picks_min_footprint(self):
        binding = ResourceBinder().bind(tiny_graph(), strategy=ResourceBinder.SMALLEST)
        assert binding.spec_for("mix").name == "mixer-2x2"

    def test_unknown_strategy(self):
        with pytest.raises(BindingError):
            ResourceBinder().bind(tiny_graph(), strategy="fanciest")

    def test_hardware_hint_used_when_no_explicit(self):
        g = SequencingGraph()
        g.add_operation(Operation("m", OperationType.MIX, hardware="mixer-2x3"))
        binding = ResourceBinder().bind(g)
        assert binding.spec_for("m").name == "mixer-2x3"

    def test_non_reconfigurable_ops_skipped(self):
        g = SequencingGraph()
        g.add_operation(Operation("d", OperationType.DISPENSE, duration_s=2))
        g.add_operation(Operation("m", OperationType.MIX))
        g.add_dependency("d", "m")
        binding = ResourceBinder().bind(g)
        assert "d" not in binding
        assert "m" in binding


class TestBindingQueries:
    def test_durations_resolve_spec_nominal(self):
        g = build_pcr_mixing_graph()
        binding = ResourceBinder().bind(g, explicit=PCR_BINDING)
        # Table 1 durations.
        assert binding.durations() == {
            "M1": 10.0, "M2": 5.0, "M3": 6.0, "M4": 5.0,
            "M5": 5.0, "M6": 10.0, "M7": 3.0,
        }

    def test_op_duration_override_wins(self):
        g = SequencingGraph()
        g.add_operation(Operation("m", OperationType.MIX, duration_s=42.0))
        binding = ResourceBinder().bind(g)
        assert binding.duration_for("m") == 42.0

    def test_duration_for_unbound_portless_op_raises(self):
        g = SequencingGraph()
        g.add_operation(Operation("d", OperationType.DISPENSE))  # no duration
        binding = ResourceBinder().bind(g)
        with pytest.raises(BindingError):
            binding.duration_for("d")

    def test_spec_for_unbound_raises(self):
        binding = ResourceBinder().bind(tiny_graph())
        with pytest.raises(BindingError):
            binding.spec_for("ghost")

    def test_total_module_cells(self):
        g = build_pcr_mixing_graph()
        binding = ResourceBinder().bind(g, explicit=PCR_BINDING)
        # 16+18+20+18+18+16+24 = 130 cells across all PCR modules.
        assert binding.total_module_cells() == 130
