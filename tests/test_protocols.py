"""Unit tests for the protocol builders (PCR, dilution, diagnostics)."""

import pytest

from repro.assay.operations import OperationType
from repro.assay.protocols.dilution import build_serial_dilution_graph
from repro.assay.protocols.glucose import build_multiplexed_diagnostics_graph
from repro.assay.protocols.pcr import (
    PCR_BINDING,
    build_pcr_full_graph,
    build_pcr_mixing_graph,
)


class TestPCRMixingGraph:
    def test_seven_mix_operations(self):
        g = build_pcr_mixing_graph()
        assert len(g) == 7
        assert all(op.type is OperationType.MIX for op in g)

    def test_figure5_tree_edges(self):
        g = build_pcr_mixing_graph()
        assert g.edges() == [
            ("M1", "M5"), ("M2", "M5"), ("M3", "M6"),
            ("M4", "M6"), ("M5", "M7"), ("M6", "M7"),
        ]

    def test_binding_covers_all_ops(self):
        g = build_pcr_mixing_graph()
        assert set(PCR_BINDING) == {op.id for op in g}

    def test_leaves_carry_reagent_pairs(self):
        g = build_pcr_mixing_graph()
        reagents = set()
        for leaf in ("M1", "M2", "M3", "M4"):
            pair = g.operation(leaf).params["reagents"]
            assert len(pair) == 2
            reagents.update(pair)
        assert len(reagents) == 8  # eight distinct PCR reagents

    def test_hardware_hints_match_table1(self):
        g = build_pcr_mixing_graph()
        for op_id, hw in PCR_BINDING.items():
            assert g.operation(op_id).hardware == hw

    def test_m7_is_sink(self):
        g = build_pcr_mixing_graph()
        assert g.sinks() == ["M7"]
        assert g.sources() == ["M1", "M2", "M3", "M4"]


class TestPCRFullGraph:
    def test_has_dispense_and_output(self):
        g = build_pcr_full_graph()
        kinds = {op.type for op in g}
        assert OperationType.DISPENSE in kinds
        assert OperationType.OUTPUT in kinds

    def test_eight_dispenses(self):
        g = build_pcr_full_graph()
        dispenses = [op for op in g if op.type is OperationType.DISPENSE]
        assert len(dispenses) == 8

    def test_each_leaf_mix_has_two_dispense_inputs(self):
        g = build_pcr_full_graph()
        for leaf in ("M1", "M2", "M3", "M4"):
            preds = g.predecessors(leaf)
            assert len(preds) == 2
            assert all(g.operation(p).type is OperationType.DISPENSE for p in preds)

    def test_output_follows_m7(self):
        g = build_pcr_full_graph()
        assert g.predecessors("OUT") == ["M7"]
        assert g.sinks() == ["OUT"]


class TestSerialDilution:
    def test_depth_controls_rungs(self):
        g = build_serial_dilution_graph(depth=4)
        dilutes = [op for op in g if op.type is OperationType.DILUTE]
        assert len(dilutes) == 4

    def test_chain_dependencies(self):
        g = build_serial_dilution_graph(depth=3)
        assert ("DIL1", "DIL2") in g.edges()
        assert ("DIL2", "DIL3") in g.edges()

    def test_concentration_params_halve(self):
        g = build_serial_dilution_graph(depth=3)
        assert g.operation("DIL1").params["ratio"] == pytest.approx(0.5)
        assert g.operation("DIL3").params["ratio"] == pytest.approx(0.125)

    def test_storage_toggle(self):
        with_storage = build_serial_dilution_graph(2, with_storage=True)
        without = build_serial_dilution_graph(2, with_storage=False)
        assert any(op.type is OperationType.STORE for op in with_storage)
        assert not any(op.type is OperationType.STORE for op in without)

    def test_detection_toggle(self):
        g = build_serial_dilution_graph(2, with_detection=True)
        assert sum(1 for op in g if op.type is OperationType.DETECT) == 2

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            build_serial_dilution_graph(0)

    def test_graph_validates(self):
        build_serial_dilution_graph(5, with_detection=True).validate()


class TestMultiplexedDiagnostics:
    def test_pair_count(self):
        g = build_multiplexed_diagnostics_graph(samples=2, reagents=3)
        mixes = [op for op in g if op.type is OperationType.MIX]
        assert len(mixes) == 6

    def test_each_pair_is_independent_chain(self):
        g = build_multiplexed_diagnostics_graph(samples=1, reagents=1)
        # dispense x2 -> mix -> detect -> output
        assert len(g) == 5
        assert g.predecessors("DET-sample1-reagent1") == ["MIX-sample1-reagent1"]

    def test_requested_mixer_hint(self):
        g = build_multiplexed_diagnostics_graph(1, 1, mixer="mixer-2x4")
        assert g.operation("MIX-sample1-reagent1").hardware == "mixer-2x4"

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            build_multiplexed_diagnostics_graph(0, 2)

    def test_graph_validates(self):
        build_multiplexed_diagnostics_graph(3, 2).validate()
