"""Unit tests for Interval and Box (the 3-D packing primitives)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Box, Interval, Rect

intervals = st.builds(
    lambda s, d: Interval(s, s + d),
    s=st.floats(0, 50, allow_nan=False),
    d=st.floats(0.5, 20, allow_nan=False),
)


class TestInterval:
    def test_duration(self):
        assert Interval(3.0, 8.0).duration == 5.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 5.0)
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)

    def test_half_open_no_overlap_at_boundary(self):
        # The paper's module reuse: [0,10) and [10,15) share cells legally.
        assert not Interval(0, 10).overlaps(Interval(10, 15))

    def test_overlap_basic(self):
        assert Interval(0, 10).overlaps(Interval(5, 12))
        assert Interval(5, 12).overlaps(Interval(0, 10))

    def test_containment_overlaps(self):
        assert Interval(0, 20).overlaps(Interval(5, 6))

    def test_overlap_duration(self):
        assert Interval(0, 10).overlap_duration(Interval(5, 12)) == 5.0
        assert Interval(0, 10).overlap_duration(Interval(10, 12)) == 0.0

    def test_contains_time_half_open(self):
        iv = Interval(5, 10)
        assert iv.contains_time(5)
        assert iv.contains_time(9.999)
        assert not iv.contains_time(10)
        assert not iv.contains_time(4.999)

    def test_shifted(self):
        assert Interval(2, 5).shifted(3) == Interval(5, 8)

    def test_str(self):
        assert str(Interval(0, 10)) == "[0, 10)"

    @given(intervals, intervals)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals, intervals)
    def test_overlap_duration_positive_iff_overlaps(self, a, b):
        assert (a.overlap_duration(b) > 0) == a.overlaps(b)

    @given(intervals)
    def test_self_overlap_duration_is_duration(self, iv):
        assert iv.overlap_duration(iv) == pytest.approx(iv.duration)


class TestBox:
    def test_volume(self):
        box = Box(Rect(1, 1, 4, 4), Interval(0, 10))
        assert box.volume == 160.0

    def test_conflict_requires_space_and_time(self):
        a = Box(Rect(1, 1, 4, 4), Interval(0, 10))
        same_place_later = Box(Rect(1, 1, 4, 4), Interval(10, 15))
        same_time_elsewhere = Box(Rect(10, 10, 2, 2), Interval(0, 10))
        overlapping = Box(Rect(3, 3, 4, 4), Interval(5, 12))
        assert not a.conflicts(same_place_later)
        assert not a.conflicts(same_time_elsewhere)
        assert a.conflicts(overlapping)

    def test_conflict_volume(self):
        a = Box(Rect(1, 1, 4, 4), Interval(0, 10))
        b = Box(Rect(3, 3, 4, 4), Interval(5, 12))
        # 2x2 cells shared for 5 seconds.
        assert a.conflict_volume(b) == 20.0

    def test_conflict_volume_zero_when_time_disjoint(self):
        a = Box(Rect(1, 1, 4, 4), Interval(0, 10))
        b = Box(Rect(1, 1, 4, 4), Interval(10, 20))
        assert a.conflict_volume(b) == 0.0

    def test_footprint_at(self):
        box = Box(Rect(2, 2, 3, 3), Interval(5, 9))
        assert box.footprint_at(6) == Rect(2, 2, 3, 3)
        assert box.footprint_at(9) is None
        assert box.footprint_at(0) is None

    def test_conflict_volume_symmetric(self):
        a = Box(Rect(1, 1, 4, 6), Interval(0, 7))
        b = Box(Rect(2, 4, 5, 5), Interval(3, 12))
        assert a.conflict_volume(b) == b.conflict_volume(a)
