"""The CLI's documented, scriptable exit-code contract.

``repro.cli`` documents five statuses — 0 ok, 2 usage, 3 infeasible,
4 timeout, 5 crashed — and maps the :class:`repro.util.errors.ReproError`
hierarchy onto them in exactly one place (``main``'s handler). These
tests assert the numbers themselves, so scripts gating on ``$?`` keep
working.
"""

from __future__ import annotations

import pytest

import repro.cli as cli
from repro.cli import (
    EXIT_CRASHED,
    EXIT_INFEASIBLE,
    EXIT_OK,
    EXIT_TIMEOUT,
    EXIT_USAGE,
    CliExit,
    _exit_code,
    main,
)
from repro.exec import (
    STATUS_CRASHED,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_RETRIED_OK,
    STATUS_TIMEOUT,
)
from repro.util.errors import (
    PipelineError,
    UsageError,
    WorkerCrashError,
    WorkerTimeoutError,
)


class TestExitConstants:
    def test_documented_values(self):
        assert (EXIT_OK, EXIT_USAGE, EXIT_INFEASIBLE, EXIT_TIMEOUT,
                EXIT_CRASHED) == (0, 2, 3, 4, 5)


class TestCliExit:
    def test_is_a_system_exit_with_message_and_code(self):
        exc = CliExit("batch: unknown protocol", EXIT_USAGE)
        assert isinstance(exc, SystemExit)
        assert str(exc) == "batch: unknown protocol"
        assert exc.code == EXIT_USAGE

    def test_match_works_through_pytest_raises(self):
        with pytest.raises(SystemExit, match="unknown protocol"):
            raise CliExit("batch: unknown protocol", EXIT_USAGE)


class TestWorstStatusWins:
    def test_all_ok(self):
        assert _exit_code([STATUS_OK, STATUS_RETRIED_OK]) == EXIT_OK

    def test_empty_is_ok(self):
        assert _exit_code([]) == EXIT_OK

    def test_infeasible_beats_ok(self):
        assert _exit_code([STATUS_OK, STATUS_INFEASIBLE]) == EXIT_INFEASIBLE

    def test_timeout_beats_infeasible(self):
        assert _exit_code(
            [STATUS_INFEASIBLE, STATUS_TIMEOUT, STATUS_OK]
        ) == EXIT_TIMEOUT

    def test_crashed_beats_everything(self):
        assert _exit_code(
            [STATUS_TIMEOUT, STATUS_CRASHED, STATUS_INFEASIBLE]
        ) == EXIT_CRASHED


def run_cli(argv) -> tuple[int, str]:
    """main() with SystemExit unwrapped to its numeric status."""
    try:
        return main(argv), ""
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 1, str(exc)


class TestErrorHandlerMapping:
    """One handler in main() maps each error family to its number."""

    @pytest.mark.parametrize(
        "raised, expected",
        [
            (UsageError("bad flags"), EXIT_USAGE),
            (WorkerTimeoutError("deadline exceeded"), EXIT_TIMEOUT),
            (WorkerCrashError("worker died"), EXIT_CRASHED),
            (PipelineError("no feasible placement"), EXIT_INFEASIBLE),
            (ValueError("bad literal"), EXIT_USAGE),
        ],
    )
    def test_exception_to_exit_code(self, monkeypatch, capsys, raised, expected):
        def boom(args):
            raise raised

        monkeypatch.setattr(
            cli.argparse.ArgumentParser, "parse_args",
            lambda self, argv=None: cli.argparse.Namespace(
                command="sweep", func=boom
            ),
        )
        code, message = run_cli(["sweep"])
        assert code == expected
        assert str(raised) in message
        assert f"sweep: {raised}" in capsys.readouterr().err

    def test_command_return_value_passes_through(self, monkeypatch):
        monkeypatch.setattr(
            cli.argparse.ArgumentParser, "parse_args",
            lambda self, argv=None: cli.argparse.Namespace(
                command="sweep", func=lambda args: EXIT_OK
            ),
        )
        assert main(["sweep"]) == EXIT_OK


class TestRealUsageErrors:
    """End-to-end exit 2 on flag validation (no synthesis involved)."""

    def test_unknown_protocol(self, capsys):
        code, _ = run_cli(["batch", "--protocols", "warp"])
        assert code == EXIT_USAGE
        assert "unknown protocol" in capsys.readouterr().err

    def test_unknown_fault_pattern(self, capsys):
        code, _ = run_cli(["batch", "--protocols", "pcr", "--faults", "meteor"])
        assert code == EXIT_USAGE
        assert "unknown fault pattern" in capsys.readouterr().err

    def test_journal_without_sweep(self, capsys):
        code, _ = run_cli(["recover", "--journal", "j.jsonl"])
        assert code == EXIT_USAGE
        assert "--sweep" in capsys.readouterr().err

    def test_resume_without_sweep(self):
        code, _ = run_cli(["recover", "--resume", "j.jsonl"])
        assert code == EXIT_USAGE

    def test_resume_from_missing_journal(self, tmp_path, capsys):
        # Pointing --resume at a nonexistent path is a flag error (2),
        # not a journal-integrity error (3).
        code, _ = run_cli(
            ["batch", "--resume", str(tmp_path / "nope.jsonl")]
        )
        assert code == EXIT_USAGE
        assert "not found" in capsys.readouterr().err

    def test_cell_with_sweep(self, capsys):
        code, _ = run_cli(["recover", "--sweep", "--cell", "1", "1"])
        assert code == EXIT_USAGE

    def test_fault_time_out_of_range(self):
        code, _ = run_cli(["recover", "--fault-time", "1.5"])
        assert code == EXIT_USAGE

    def test_mismatched_cell_fault_time_pairs(self, capsys):
        code, _ = run_cli(
            ["recover", "--cell", "3", "4", "--cell", "5", "6",
             "--fault-time", "0.3"]
        )
        assert code == EXIT_USAGE
        err = capsys.readouterr().err
        assert "pair up one-to-one" in err
        assert "2 --cell" in err and "1 --fault-time" in err

    def test_mismatched_pairs_on_simulate_too(self, capsys):
        code, _ = run_cli(
            ["simulate", "--fault-time", "0.2", "--fault-time", "0.6",
             "--cell", "2", "2"]
        )
        assert code == EXIT_USAGE


class TestUnknownProtocolEverywhere:
    """Every --protocol-taking subcommand maps an unknown name to exit
    2 with the available choices listed — a typo is a usage mistake,
    not a crash (the catalog raises UsageError, never bare KeyError)."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["flow", "--protocol", "warp"],
            ["place", "--protocol", "warp"],
            ["route", "--protocol", "warp"],
            ["simulate", "--protocol", "warp"],
            ["portfolio", "--protocol", "warp"],
            ["recover", "--protocol", "warp"],
            ["explore", "--protocol", "warp"],
            ["batch", "--protocols", "warp"],
        ],
    )
    def test_unknown_protocol_exits_2(self, capsys, argv):
        code, _ = run_cli(argv)
        assert code == EXIT_USAGE
        err = capsys.readouterr().err
        assert "unknown protocol" in err
        assert "pcr" in err  # the available choices are listed

    @pytest.mark.parametrize(
        "argv",
        [
            ["flow", "--protocol", "gen:warp:n=50"],
            ["recover", "--protocol", "gen:mix-tree"],  # missing n=
            ["batch", "--protocols", "gen:mix-tree:n=bogus"],
        ],
    )
    def test_malformed_generator_spec_exits_2(self, argv):
        code, _ = run_cli(argv)
        assert code == EXIT_USAGE

    def test_catalog_raises_usage_error_not_key_error(self):
        from repro.assay.catalog import build_assay

        with pytest.raises(UsageError, match="unknown protocol"):
            build_assay("warp")


class TestCampaignUsageErrors:
    def test_missing_config_exits_2(self, capsys):
        code, _ = run_cli(["campaign"])
        assert code == EXIT_USAGE
        assert "config file is required" in capsys.readouterr().err

    def test_nonexistent_config_exits_2(self, tmp_path):
        code, _ = run_cli(["campaign", str(tmp_path / "nope.toml")])
        assert code == EXIT_USAGE

    def test_bad_config_exits_2(self, tmp_path, capsys):
        p = tmp_path / "c.toml"
        p.write_text(
            '[campaign]\nname = "x"\n\n'
            '[[grid]]\ngenerators = ["warp"]\n'
        )
        code, _ = run_cli(["campaign", str(p)])
        assert code == EXIT_USAGE
        assert "unknown protocol" in capsys.readouterr().err

    def test_validate_missing_log_exits_2(self, tmp_path):
        code, _ = run_cli(
            ["campaign", "--validate", str(tmp_path / "nope.jsonl")]
        )
        assert code == EXIT_USAGE

    def test_validate_invalid_log_exits_3(self, tmp_path, capsys):
        log = tmp_path / "bad.jsonl"
        log.write_text("{not json\n")
        code, _ = run_cli(["campaign", "--validate", str(log)])
        assert code == EXIT_INFEASIBLE
        assert "INVALID" in capsys.readouterr().out

    def test_sensor_flags_need_closed_loop(self, capsys):
        code, _ = run_cli(["recover", "--sensor-fpr", "0.1"])
        assert code == EXIT_USAGE
        assert "--closed-loop" in capsys.readouterr().err

    def test_argparse_own_usage_error_is_also_2(self):
        code, _ = run_cli(["no-such-command"])
        assert code == EXIT_USAGE

    def test_version_exits_zero(self):
        code, _ = run_cli(["--version"])
        assert code == 0
