"""Tests for portfolio search: RNG determinism under process parallelism."""

import random

import pytest

from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.pipeline import (
    OBJECTIVES,
    PortfolioSpec,
    instance_seeds,
    objective_value,
    run_portfolio,
)
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.synthesis.flow import SynthesisFlow
from repro.util.errors import PipelineError
from repro.util.rng import ensure_rng, spawn_rng, spawn_seed


def fast_spec(**kwargs):
    return PortfolioSpec(
        graph=build_pcr_mixing_graph(),
        explicit_binding=PCR_BINDING,
        annealing=AnnealingParams.fast(),
        **kwargs,
    )


class TestSpawnedStreams:
    def test_child_seeds_stable_across_parents(self):
        # Two identically-seeded parents spawn identical seed sequences.
        a, b = random.Random(42), random.Random(42)
        assert [spawn_seed(a) for _ in range(5)] == [spawn_seed(b) for _ in range(5)]

    def test_child_streams_independent_of_each_other(self):
        parent = random.Random(7)
        first, second = spawn_rng(parent), spawn_rng(parent)
        seq1 = [first.random() for _ in range(10)]
        seq2 = [second.random() for _ in range(10)]
        assert seq1 != seq2

    def test_consuming_a_child_does_not_perturb_the_parent(self):
        lonely = random.Random(7)
        spawn_rng(lonely)  # child never used
        expected = lonely.random()

        busy = random.Random(7)
        child = spawn_rng(busy)
        [child.random() for _ in range(100)]  # heavy child usage
        assert busy.random() == expected

    def test_instance_seeds_deterministic_and_distinct(self):
        seeds = instance_seeds(7, 6)
        assert seeds == instance_seeds(7, 6)
        assert len(set(seeds)) == 6
        assert seeds[0] == 7  # instance 0 reuses the flow seed
        # A longer portfolio extends, never reshuffles, the shorter one.
        assert instance_seeds(7, 3) == seeds[:3]

    def test_instance_seeds_validation(self):
        with pytest.raises(TypeError):
            instance_seeds(None, 2)
        with pytest.raises(ValueError):
            instance_seeds(7, 0)


class TestPortfolioDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_portfolio(fast_spec(), n=3, seed=11, objective="area", jobs=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_portfolio(fast_spec(), n=3, seed=11, objective="area", jobs=2)

    def test_identical_winner_regardless_of_worker_count(self, serial, parallel):
        assert serial.winner_index == parallel.winner_index
        assert serial.winner.seed == parallel.winner.seed

    def test_identical_instance_objectives(self, serial, parallel):
        assert [o.objective_value for o in serial.outcomes] == [
            o.objective_value for o in parallel.outcomes
        ]
        assert [o.seed for o in serial.outcomes] == [
            o.seed for o in parallel.outcomes
        ]

    def test_identical_winner_placements(self, serial, parallel):
        a = {
            pm.op_id: (pm.x, pm.y)
            for pm in serial.winner_result.placement_result.placement
        }
        b = {
            pm.op_id: (pm.x, pm.y)
            for pm in parallel.winner_result.placement_result.placement
        }
        assert a == b

    def test_winner_is_best_under_objective(self, serial):
        best = min(o.objective_value for o in serial.outcomes)
        assert serial.winner.objective_value == best

    def test_repeat_run_is_bitwise_stable(self, serial):
        again = run_portfolio(fast_spec(), n=3, seed=11, objective="area", jobs=1)
        assert [o.objective_value for o in again.outcomes] == [
            o.objective_value for o in serial.outcomes
        ]
        assert again.winner_index == serial.winner_index


class TestFacadeIdentity:
    def test_best_of_one_reproduces_the_serial_facade(self):
        # Acceptance bar: for a fixed seed, the serial facade and a
        # --jobs 1 best-of-1 portfolio produce identical metrics.
        seed = 13
        facade = SynthesisFlow(
            placer=SimulatedAnnealingPlacer(
                params=AnnealingParams.fast(), seed=spawn_rng(ensure_rng(seed))
            ),
            seed=seed,
        ).run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING)
        portfolio = run_portfolio(fast_spec(), n=1, seed=seed, jobs=1)
        winner = portfolio.winner_result
        assert winner.area_cells == facade.area_cells
        assert winner.makespan == facade.makespan
        assert winner.fti == facade.fti
        assert {
            pm.op_id: (pm.x, pm.y) for pm in winner.placement_result.placement
        } == {pm.op_id: (pm.x, pm.y) for pm in facade.placement_result.placement}


class TestObjectives:
    def test_known_objectives(self):
        assert set(OBJECTIVES) == {"area", "makespan", "fti", "route-steps"}

    def test_unknown_objective_rejected(self):
        with pytest.raises(PipelineError, match="unknown objective"):
            run_portfolio(fast_spec(), n=1, seed=1, objective="beauty")

    def test_missing_metric_rejected(self):
        # route-steps without the routing stage is a configuration error.
        result = fast_spec(route=False).run_instance(seed=1)
        with pytest.raises(PipelineError, match="undefined"):
            objective_value(result, "route-steps")

    def test_unproducible_objective_fails_before_any_instance_runs(self):
        # The mismatch must surface in milliseconds, not after N runs.
        with pytest.raises(PipelineError, match="route=True"):
            run_portfolio(fast_spec(route=False), n=8, seed=1,
                          objective="route-steps")
        with pytest.raises(PipelineError, match="compute_fti_report"):
            run_portfolio(fast_spec(compute_fti_report=False), n=8, seed=1,
                          objective="fti")

    def test_fti_objective_maximizes(self):
        portfolio = run_portfolio(fast_spec(), n=3, seed=11, objective="fti", jobs=1)
        best = max(o.objective_value for o in portfolio.outcomes)
        assert portfolio.winner.objective_value == best

    def test_to_dict_is_json_safe(self):
        import json

        portfolio = run_portfolio(fast_spec(), n=2, seed=5, jobs=1)
        d = portfolio.to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["winner_index"] == portfolio.winner_index
        assert len(d["instances"]) == 2

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_portfolio(fast_spec(), n=2, seed=5, jobs=0)


class TestSupervisedFailures:
    def test_crashed_instance_lands_in_failures_and_survivors_win(self):
        from repro.exec import STATUS_CRASHED
        from repro.testing.chaos import ChaosPolicy

        chaos = ChaosPolicy.explicit_plan({(0, 0): "unpicklable"})
        portfolio = run_portfolio(
            fast_spec(), n=2, seed=11, jobs=2, max_retries=0, chaos=chaos
        )
        assert len(portfolio.failures) == 1
        failure = portfolio.failures[0]
        assert failure["key"] == "instance-0"
        assert failure["status"] == STATUS_CRASHED
        assert failure["error"]
        # The survivor is selected and carries the original index.
        assert [o.index for o in portfolio.outcomes] == [1]
        assert portfolio.winner.index == 1
        assert "failures" in portfolio.to_dict()

    def test_retried_instance_keeps_the_portfolio_bit_identical(self):
        from repro.testing.chaos import ChaosPolicy

        clean = run_portfolio(fast_spec(), n=2, seed=11, jobs=2)
        chaos = ChaosPolicy.explicit_plan({(1, 0): "unpicklable"})
        stormy = run_portfolio(
            fast_spec(), n=2, seed=11, jobs=2, max_retries=2, chaos=chaos
        )
        assert not stormy.failures
        assert stormy.winner_index == clean.winner_index
        assert [o.objective_value for o in stormy.outcomes] == [
            o.objective_value for o in clean.outcomes
        ]

    def test_every_instance_crashed_raises_worker_crash_error(self):
        from repro.testing.chaos import ChaosPolicy
        from repro.util.errors import WorkerCrashError

        chaos = ChaosPolicy.explicit_plan(
            {(i, 0): "unpicklable" for i in range(2)}
        )
        with pytest.raises(WorkerCrashError, match="all 2 portfolio instances"):
            run_portfolio(
                fast_spec(), n=2, seed=11, jobs=2, max_retries=0, chaos=chaos
            )
