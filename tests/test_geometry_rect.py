"""Unit tests for Rect and Point (repro.geometry.rect)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

rects = st.builds(
    Rect,
    x=st.integers(-5, 10),
    y=st.integers(-5, 10),
    width=st.integers(1, 8),
    height=st.integers(1, 8),
)


class TestPoint:
    def test_fields(self):
        p = Point(3, 4)
        assert p.x == 3 and p.y == 4

    def test_is_tuple(self):
        x, y = Point(3, 4)
        assert (x, y) == (3, 4)

    def test_translated(self):
        assert Point(3, 4).translated(-1, 2) == Point(2, 6)

    def test_manhattan_distance(self):
        assert Point(1, 1).manhattan_distance(Point(4, 5)) == 7

    def test_manhattan_distance_symmetric(self):
        a, b = Point(2, 9), Point(7, 1)
        assert a.manhattan_distance(b) == b.manhattan_distance(a)

    def test_neighbors4(self):
        assert set(Point(2, 2).neighbors4()) == {
            Point(1, 2), Point(3, 2), Point(2, 1), Point(2, 3)
        }


class TestRectBasics:
    def test_extent_properties(self):
        r = Rect(2, 3, 4, 5)
        assert (r.x2, r.y2) == (5, 7)
        assert r.area == 20
        assert r.origin == Point(2, 3)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 1, 0, 3)
        with pytest.raises(ValueError):
            Rect(1, 1, 3, -1)

    def test_unit_rect(self):
        r = Rect(5, 5, 1, 1)
        assert r.area == 1
        assert list(r.cells()) == [Point(5, 5)]

    def test_center_of_even_rect_rounds_down(self):
        assert Rect(1, 1, 4, 4).center == Point(2, 2)

    def test_center_of_odd_rect_is_exact(self):
        assert Rect(1, 1, 3, 3).center == Point(2, 2)

    def test_str(self):
        assert str(Rect(2, 3, 4, 5)) == "4x5@(2,3)"


class TestRectPredicates:
    def test_contains_point_inclusive_bounds(self):
        r = Rect(2, 2, 3, 3)
        assert r.contains_point(Point(2, 2))
        assert r.contains_point(Point(4, 4))
        assert not r.contains_point(Point(5, 4))
        assert not r.contains_point(Point(1, 2))

    def test_contains_point_accepts_tuples(self):
        assert Rect(1, 1, 2, 2).contains_point((2, 2))

    def test_contains_rect(self):
        outer = Rect(1, 1, 10, 10)
        assert outer.contains_rect(Rect(3, 3, 2, 2))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(9, 9, 3, 3))

    def test_intersects_shared_edge_cells(self):
        # Closed-cell semantics: touching *cells* means intersecting.
        assert Rect(1, 1, 2, 2).intersects(Rect(2, 2, 2, 2))

    def test_disjoint_rects(self):
        assert not Rect(1, 1, 2, 2).intersects(Rect(3, 1, 2, 2))
        assert not Rect(1, 1, 2, 2).intersects(Rect(1, 3, 2, 2))

    def test_can_fit_respects_rotation_flag(self):
        r = Rect(1, 1, 3, 6)
        assert r.can_fit(6, 3, allow_rotation=True)
        assert not r.can_fit(6, 3, allow_rotation=False)
        assert r.can_fit(3, 6, allow_rotation=False)

    def test_can_fit_exact(self):
        assert Rect(4, 7, 4, 4).can_fit(4, 4)

    def test_cannot_fit_larger(self):
        assert not Rect(1, 1, 3, 3).can_fit(4, 2)


class TestRectCombinators:
    def test_intersection_basic(self):
        inter = Rect(1, 1, 4, 4).intersection(Rect(3, 3, 4, 4))
        assert inter == Rect(3, 3, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(1, 1, 2, 2).intersection(Rect(10, 10, 2, 2)) is None

    def test_overlap_area(self):
        assert Rect(1, 1, 4, 4).overlap_area(Rect(3, 3, 4, 4)) == 4
        assert Rect(1, 1, 2, 2).overlap_area(Rect(5, 5, 2, 2)) == 0

    def test_union_bounds(self):
        u = Rect(1, 1, 2, 2).union_bounds(Rect(5, 6, 2, 2))
        assert u == Rect(1, 1, 6, 7)

    def test_translated(self):
        assert Rect(2, 3, 4, 5).translated(1, -2) == Rect(3, 1, 4, 5)

    def test_moved_to(self):
        assert Rect(2, 3, 4, 5).moved_to(1, 1) == Rect(1, 1, 4, 5)

    def test_rotated_swaps_dims(self):
        assert Rect(2, 3, 4, 5).rotated() == Rect(2, 3, 5, 4)

    def test_inset_is_segregation_inverse(self):
        fp = Rect(3, 3, 4, 6)
        assert fp.inset(1).expanded(1) == fp

    def test_inset_too_much_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 1, 2, 5).inset(1)

    def test_expanded(self):
        assert Rect(3, 3, 2, 2).expanded(1) == Rect(2, 2, 4, 4)


class TestRectIteration:
    def test_cells_count_equals_area(self):
        r = Rect(2, 3, 3, 4)
        assert len(list(r.cells())) == r.area

    def test_cells_all_contained(self):
        r = Rect(2, 3, 3, 4)
        assert all(r.contains_point(p) for p in r.cells())

    def test_boundary_cells_of_3x3(self):
        r = Rect(1, 1, 3, 3)
        boundary = set(r.boundary_cells())
        assert len(boundary) == 8
        assert Point(2, 2) not in boundary

    def test_boundary_of_thin_rect_is_everything(self):
        r = Rect(1, 1, 1, 5)
        assert set(r.boundary_cells()) == set(r.cells())


class TestRectProperties:
    @given(rects, rects)
    def test_intersects_iff_intersection_exists(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(rects, rects)
    def test_overlap_area_symmetric(self, a, b):
        assert a.overlap_area(b) == b.overlap_area(a)

    @given(rects, rects)
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects, rects)
    def test_union_bounds_contains_both(self, a, b):
        u = a.union_bounds(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects)
    def test_overlap_with_self_is_area(self, r):
        assert r.overlap_area(r) == r.area

    @given(rects, rects)
    def test_overlap_matches_cell_count(self, a, b):
        expected = len(set(a.cells()) & set(b.cells()))
        assert a.overlap_area(b) == expected

    @given(rects)
    def test_rotation_preserves_area(self, r):
        assert r.rotated().area == r.area
