"""The campaign runner's contracts: deterministic expansion, seeded
scenarios, jobs-invariant byte-identical logs, journal/resume
equivalence, and schema validation of every record.
"""

from __future__ import annotations

import json

import pytest

from repro.util.errors import ReproError, UsageError
from repro.workload.campaign import (
    RECORD_SCHEMA_VERSION,
    CampaignConfig,
    CampaignRunner,
    SensorSpec,
    derive_seed,
    parse_array,
    read_log,
    validate_log,
)

TINY = {
    "campaign": {"name": "tiny", "seed": 11},
    "grid": [
        {
            "generators": ["gen:panel:n=8:seed=1", "gen:mix-tree:n=8:seed=2"],
            "fault_models": ["none", "permanent"],
        }
    ],
}


def tiny_config() -> CampaignConfig:
    return CampaignConfig.from_dict(TINY, source="inline")


class TestConfigParsing:
    def test_load_toml(self, tmp_path):
        p = tmp_path / "c.toml"
        p.write_text(
            '[campaign]\nname = "x"\nseed = 3\n\n'
            '[[grid]]\ngenerators = ["pcr"]\n'
        )
        cfg = CampaignConfig.load(p)
        assert (cfg.name, cfg.seed) == ("x", 3)
        scenarios = cfg.expand()
        assert [s.key for s in scenarios] == ["pcr|auto|none|ideal|event"]

    def test_load_json(self, tmp_path):
        p = tmp_path / "c.json"
        p.write_text(json.dumps(TINY))
        assert len(CampaignConfig.load(p).expand()) == 4

    def test_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="not found"):
            CampaignConfig.load(tmp_path / "nope.toml")

    def test_bad_toml_is_usage_error(self, tmp_path):
        p = tmp_path / "c.toml"
        p.write_text("[campaign\n")
        with pytest.raises(UsageError, match="cannot parse"):
            CampaignConfig.load(p)

    @pytest.mark.parametrize(
        "grid, match",
        [
            ({}, "generators"),
            ({"generators": ["warp"]}, "unknown protocol"),
            ({"generators": ["gen:warp:n=9"]}, "unknown generator family"),
            ({"generators": ["pcr"], "fault_models": ["meteor"]},
             "unknown fault model"),
            ({"generators": ["pcr"], "engines": ["warp"]}, "unknown engine"),
            ({"generators": ["pcr"], "arrays": ["12by12"]}, "bad array size"),
            ({"generators": ["pcr"], "typo": [1]}, "unknown key"),
        ],
    )
    def test_bad_grids_fail_at_load_time(self, grid, match):
        with pytest.raises(UsageError, match=match):
            CampaignConfig.from_dict(
                {"campaign": {"name": "x"}, "grid": [grid]}
            )

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(UsageError, match="already declared"):
            CampaignConfig.from_dict({
                "campaign": {"name": "x"},
                "grid": [
                    {"generators": ["pcr"]},
                    {"generators": ["pcr"]},
                ],
            })

    def test_gen_specs_canonicalized(self):
        cfg = CampaignConfig.from_dict({
            "campaign": {"name": "x"},
            "grid": [{"generators": ["gen:panel:seed=1:n=8"]}],
        })
        assert cfg.expand()[0].spec == "gen:panel:n=8:seed=1"


class TestExpansion:
    def test_grid_order_and_indices(self):
        scenarios = tiny_config().expand()
        assert [s.index for s in scenarios] == [0, 1, 2, 3]
        assert [s.key for s in scenarios] == [
            "gen:panel:n=8:seed=1|auto|none|ideal|event",
            "gen:panel:n=8:seed=1|auto|permanent|ideal|event",
            "gen:mix-tree:n=8:seed=2|auto|none|ideal|event",
            "gen:mix-tree:n=8:seed=2|auto|permanent|ideal|event",
        ]

    def test_expansion_is_deterministic(self):
        a = [s.key for s in tiny_config().expand()]
        b = [s.key for s in tiny_config().expand()]
        assert a == b


class TestSeedDerivation:
    def test_contract_is_stable(self):
        # Pinned value: changing the derivation silently re-seeds every
        # historical campaign, so any change must be deliberate.
        assert derive_seed("11", "scenario", "k") == derive_seed(
            "11", "scenario", "k"
        )
        assert derive_seed("11", "scenario", "a") != derive_seed(
            "11", "scenario", "b"
        )
        assert derive_seed("11", "synthesis", "a") != derive_seed(
            "11", "scenario", "a"
        )

    def test_parts_are_delimited(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed("ab", "c") != derive_seed("a", "bc")


class TestHelpers:
    def test_parse_array(self):
        assert parse_array("auto") is None
        assert parse_array("12x8") == (12, 8)
        with pytest.raises(UsageError):
            parse_array("12")
        with pytest.raises(UsageError):
            parse_array("0x8")

    def test_sensor_spec_parse(self):
        assert SensorSpec.parse("ideal").key == "ideal"
        s = SensorSpec.parse("fpr=0.05,fnr=0.1")
        assert (s.false_positive_rate, s.false_negative_rate) == (0.05, 0.1)
        assert SensorSpec.parse({"fpr": 0.2}).false_positive_rate == 0.2
        with pytest.raises(UsageError):
            SensorSpec.parse("fpr=2.0")
        with pytest.raises(UsageError):
            SensorSpec.parse("warp=1")


class TestRunnerEndToEnd:
    def test_log_is_complete_and_valid(self, tmp_path):
        log = tmp_path / "c.jsonl"
        report = CampaignRunner(tiny_config()).run(log, jobs=1)
        assert validate_log(log) == []
        meta, records = read_log(log)
        assert meta["scenario_count"] == 4
        assert len(records) == 4
        # Zero silently-lost scenarios: every declared key, in grid
        # order, each with a terminal status.
        assert [r.key for r in records] == [
            s.key for s in tiny_config().expand()
        ]
        assert all(r.status == "ok" for r in records)
        assert report.ok_count == 4

    def test_jobs_invariance_bit_identical(self, tmp_path):
        logs = []
        for jobs in (1, 2, 4):
            log = tmp_path / f"c{jobs}.jsonl"
            CampaignRunner(tiny_config()).run(log, jobs=jobs)
            logs.append(log.read_bytes())
        assert logs[0] == logs[1] == logs[2]

    def test_resume_equivalence(self, tmp_path):
        full = tmp_path / "full.jsonl"
        CampaignRunner(tiny_config()).run(full, jobs=1)

        # First leg journals its decided scenarios...
        journal = tmp_path / "leg.journal"
        half_cfg = CampaignConfig.from_dict({
            "campaign": {"name": "tiny", "seed": 11},
            "grid": [{
                "generators": ["gen:panel:n=8:seed=1"],
                "fault_models": ["none", "permanent"],
            }],
        })
        CampaignRunner(half_cfg).run(
            tmp_path / "half.jsonl", jobs=1, journal_path=journal
        )
        # ...then the full campaign resumes from them: the resumed log
        # must be byte-identical to the uninterrupted run.
        resumed = tmp_path / "resumed.jsonl"
        report = CampaignRunner(tiny_config()).run(
            resumed, jobs=1, resume_from=journal
        )
        assert report.resumed == 2
        assert resumed.read_bytes() == full.read_bytes()

    def test_infeasible_scenarios_still_logged(self, tmp_path):
        # An 8x8 core cannot hold gen:mix-tree modules side by side;
        # synthesis fails, yet the log still carries one terminal
        # record per scenario.
        cfg = CampaignConfig.from_dict({
            "campaign": {"name": "cramped", "seed": 1},
            "grid": [{
                "generators": ["gen:mix-tree:n=8:seed=2"],
                "arrays": ["3x3"],
                "fault_models": ["none", "permanent"],
            }],
        })
        log = tmp_path / "c.jsonl"
        report = CampaignRunner(cfg).run(log, jobs=1)
        assert validate_log(log) == []
        _, records = read_log(log)
        assert [r.status for r in records] == ["infeasible", "infeasible"]
        assert all(r.error for r in records)
        assert report.ok_count == 0


class TestLogValidation:
    def run_tiny(self, tmp_path):
        log = tmp_path / "c.jsonl"
        CampaignRunner(tiny_config()).run(log, jobs=1)
        return log

    def test_missing_log_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="not found"):
            validate_log(tmp_path / "nope.jsonl")

    def test_truncated_log_detected(self, tmp_path):
        log = self.run_tiny(tmp_path)
        lines = log.read_text().splitlines(keepends=True)
        log.write_text("".join(lines[:-1]))
        assert any("lost scenarios" in e for e in validate_log(log))

    def test_corrupt_json_detected(self, tmp_path):
        log = self.run_tiny(tmp_path)
        with open(log, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        assert any("not JSON" in e for e in validate_log(log))

    def test_wrong_version_detected(self, tmp_path):
        log = self.run_tiny(tmp_path)
        lines = log.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["v"] = RECORD_SCHEMA_VERSION + 1
        lines[1] = json.dumps(entry, sort_keys=True)
        log.write_text("\n".join(lines) + "\n")
        assert any("schema version" in e for e in validate_log(log))

    def test_bad_field_type_detected(self, tmp_path):
        log = self.run_tiny(tmp_path)
        lines = log.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["seed"] = "not-an-int"
        lines[1] = json.dumps(entry, sort_keys=True)
        log.write_text("\n".join(lines) + "\n")
        assert any("field 'seed'" in e for e in validate_log(log))

    def test_duplicate_key_detected(self, tmp_path):
        log = self.run_tiny(tmp_path)
        lines = log.read_text().splitlines(keepends=True)
        log.write_text("".join(lines) + lines[1])
        problems = validate_log(log)
        assert any("duplicate key" in e for e in problems)

    def test_read_log_raises_on_invalid(self, tmp_path):
        log = self.run_tiny(tmp_path)
        log.write_text(log.read_text() + "{not json\n")
        with pytest.raises(ReproError, match="invalid campaign log"):
            read_log(log)
