"""to_dict() contracts: every result dataclass emits JSON-safe output."""

import json

import pytest

from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.placement.two_stage import TwoStagePlacer
from repro.sim.engine import BiochipSimulator
from repro.synthesis.flow import SynthesisFlow


def round_trips(d):
    return json.loads(json.dumps(d)) == d


@pytest.fixture(scope="module")
def routed_result():
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2),
        route=True,
    )
    return flow.run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING)


class TestSynthesisResultDict:
    def test_round_trips(self, routed_result):
        assert round_trips(routed_result.to_dict())

    def test_top_level_metrics(self, routed_result):
        d = routed_result.to_dict()
        assert d["assay"] == "pcr-mixing-stage"
        assert d["operations"] == 7
        assert d["makespan_s"] == routed_result.makespan
        assert d["area_cells"] == routed_result.area_cells
        assert d["fti"] == routed_result.fti
        assert d["array"] == list(routed_result.placement_result.array_dims)

    def test_nested_sections_present(self, routed_result):
        d = routed_result.to_dict()
        assert set(d["stage_timings"]) == {"bind", "schedule", "place", "route"}
        assert d["routing"] is not None
        assert d["simulation"] is None  # no verify stage in this flow

    def test_unrouted_flow_has_null_routing(self):
        flow = SynthesisFlow(
            placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
        )
        d = flow.run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING).to_dict()
        assert d["routing"] is None
        assert round_trips(d)


class TestScheduleDict:
    def test_intervals_and_makespan(self, routed_result):
        d = routed_result.schedule.to_dict()
        assert round_trips(d)
        assert d["makespan_s"] == routed_result.makespan
        assert len(d["operations"]) == 7
        for start, stop in d["operations"].values():
            assert 0 <= start < stop <= d["makespan_s"]


class TestPlacementResultDict:
    def test_modules_and_dims(self, routed_result):
        d = routed_result.placement_result.to_dict()
        assert round_trips(d)
        assert d["area_cells"] == d["array"][0] * d["array"][1]
        assert len(d["modules"]) == 7
        for m in d["modules"].values():
            assert len(m["origin"]) == 2 and len(m["size"]) == 2


class TestFTIReportDict:
    def test_counts_consistent(self, routed_result):
        d = routed_result.fti_report.to_dict()
        assert round_trips(d)
        assert d["cell_count"] == d["array"][0] * d["array"][1]
        assert (
            d["fault_tolerance_number"] + len(d["uncovered_cells"])
            == d["cell_count"]
        )
        assert d["fti"] == pytest.approx(
            d["fault_tolerance_number"] / d["cell_count"]
        )


class TestRoutingPlanDict:
    def test_summary_and_nets(self, routed_result):
        plan = routed_result.routing_plan
        d = plan.to_dict()
        assert round_trips(d)
        assert d["routed_count"] == len(d["nets"])
        assert d["routability"] == 1.0
        assert d["total_route_steps"] == sum(n["moves"] for n in d["nets"])
        for n in d["nets"]:
            assert n["latency"] == n["moves"] + n["waits"]


class TestSimulationReportDict:
    def test_replay_report(self, routed_result):
        sim = BiochipSimulator(
            routed_result.graph,
            routed_result.schedule,
            routed_result.binding,
            routed_result.placement_result.placement,
            routing_plan=routed_result.routing_plan,
        )
        report = sim.run()
        d = report.to_dict()
        assert round_trips(d)
        assert d["completed"] is True
        assert d["realized_makespan_s"] >= d["nominal_makespan_s"]
        assert d["planned_transports"] > 0


class TestTwoStageResultDict:
    def test_both_stages_nested(self):
        placer = TwoStagePlacer(
            beta=20.0, stage1_params=AnnealingParams.fast(), seed=7
        )
        flow = SynthesisFlow(placer=placer)
        result = flow.run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING)
        # The flow unwraps stage 2; serialize the full two-stage result
        # straight from the placer for the paper's comparison numbers.
        two_stage = placer.place(result.schedule, result.binding)
        d = two_stage.to_dict()
        assert round_trips(d)
        assert d["stage1"]["area_cells"] >= 0
        assert d["stage2"]["area_cells"] == two_stage.stage2.area_cells
