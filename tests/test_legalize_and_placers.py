"""Tests for bottom-left placement, greedy baseline, SA and two-stage
placers on the PCR case study."""

import pytest

from repro.modules.library import MIXER_2X2, MIXER_2X4, MIXER_LINEAR_1X4
from repro.placement.annealer import AnnealingParams
from repro.placement.greedy import GreedyPlacer, build_placed_modules
from repro.placement.initial import constructive_initial_placement
from repro.placement.legalize import first_feasible_position, repair_overlaps
from repro.placement.model import PlacedModule, Placement
from repro.placement.sa_placer import SimulatedAnnealingPlacer, default_core_side
from repro.util.errors import PlacementError


def pm(op, spec=MIXER_2X2, x=1, y=1, start=0.0, stop=10.0):
    return PlacedModule(op_id=op, spec=spec, x=x, y=y, start=start, stop=stop)


class TestFirstFeasiblePosition:
    def test_empty_space_gets_origin(self):
        seated = first_feasible_position([], pm("a", x=5, y=5), 10, 10)
        assert (seated.x, seated.y) == (1, 1)

    def test_avoids_concurrent_obstacle(self):
        obstacle = pm("o", x=1, y=1)
        seated = first_feasible_position([obstacle], pm("a"), 10, 10)
        assert not seated.footprint.intersects(obstacle.footprint)

    def test_ignores_time_disjoint_obstacle(self):
        obstacle = pm("o", x=1, y=1, start=10, stop=20)
        seated = first_feasible_position([obstacle], pm("a"), 10, 10)
        assert (seated.x, seated.y) == (1, 1)

    def test_returns_none_when_impossible(self):
        obstacle = pm("o", x=1, y=1)
        assert first_feasible_position([obstacle], pm("a"), 4, 4) is None

    def test_rotation_unlocks_fit(self):
        mod = pm("a", spec=MIXER_LINEAR_1X4)  # 6x3
        assert first_feasible_position([], mod, 3, 6, allow_rotation=False) is None
        seated = first_feasible_position([], mod, 3, 6, allow_rotation=True)
        assert seated is not None and seated.rotated

    def test_bottom_left_order(self):
        obstacle = pm("o", x=1, y=1)  # blocks the 4x4 corner
        seated = first_feasible_position([obstacle], pm("a"), 20, 20)
        # First feasible in row-major scan: right of the obstacle, row 1.
        assert (seated.x, seated.y) == (5, 1)


class TestRepairOverlaps:
    def test_feasible_placement_untouched(self):
        p = Placement(12, 12)
        p.add(pm("a", x=1, y=1))
        p.add(pm("b", x=5, y=1))
        repaired = repair_overlaps(p)
        assert repaired.is_feasible()
        assert repaired.get("a") == p.get("a")

    def test_repairs_conflict(self):
        p = Placement(12, 12)
        p.add(pm("a", x=1, y=1))
        p.add(pm("b", x=2, y=2))
        repaired = repair_overlaps(p)
        assert repaired.is_feasible()

    def test_impossible_core_raises(self):
        p = Placement(5, 4)
        p.add(pm("a", x=1, y=1))
        p.add(pm("b", x=2, y=1))
        with pytest.raises(PlacementError):
            repair_overlaps(p)


class TestConstructiveInitial:
    def test_pcr_initial_is_feasible(self, pcr_modules):
        placement = constructive_initial_placement(pcr_modules, 12, 12)
        assert placement.is_feasible()
        assert len(placement) == 7

    def test_too_small_core_raises(self, pcr_modules):
        with pytest.raises(PlacementError):
            constructive_initial_placement(pcr_modules, 6, 6)

    def test_initial_is_deterministic(self, pcr_modules):
        a = constructive_initial_placement(pcr_modules, 12, 12)
        b = constructive_initial_placement(pcr_modules, 12, 12)
        assert {m.op_id: (m.x, m.y) for m in a} == {m.op_id: (m.x, m.y) for m in b}


class TestGreedyPlacer:
    def test_result_is_feasible(self, greedy_result):
        greedy_result.placement.validate()

    def test_all_modules_placed(self, greedy_result):
        assert len(greedy_result.placement) == 7

    def test_area_in_paper_ballpark(self, greedy_result):
        """Paper: 84 cells. Any honest bottom-left greedy lands nearby;
        the key property is that it is clearly worse than SA."""
        assert 63 <= greedy_result.area_cells <= 110

    def test_area_mm2_conversion(self, greedy_result):
        assert greedy_result.area_mm2 == pytest.approx(
            greedy_result.area_cells * 2.25
        )

    def test_deterministic(self, pcr, greedy_result):
        again = GreedyPlacer().place(pcr.schedule, pcr.binding)
        assert again.area_cells == greedy_result.area_cells

    def test_core_too_small_raises(self, pcr):
        tiny = GreedyPlacer(core_width=5, core_height=5)
        with pytest.raises(PlacementError):
            tiny.place(pcr.schedule, pcr.binding)


class TestBuildPlacedModules:
    def test_builds_all_bound_ops(self, pcr):
        mods = build_placed_modules(pcr.schedule, pcr.binding)
        assert {m.op_id for m in mods} == set(pcr.binding.durations())

    def test_intervals_match_schedule(self, pcr):
        for m in build_placed_modules(pcr.schedule, pcr.binding):
            assert m.start == pcr.schedule.start(m.op_id)
            assert m.stop == pcr.schedule.stop(m.op_id)

    def test_plain_dict_binding_accepted(self, pcr):
        mapping = dict(pcr.binding.items())
        mods = build_placed_modules(pcr.schedule, mapping)
        assert len(mods) == 7

    def test_unscheduled_op_raises(self, pcr):
        mapping = dict(pcr.binding.items())
        mapping["ghost"] = MIXER_2X4
        with pytest.raises(PlacementError):
            build_placed_modules(pcr.schedule, mapping)


class TestDefaultCoreSide:
    def test_at_least_largest_dimension(self, pcr_modules):
        side = default_core_side(pcr_modules)
        max_dim = max(max(m.spec.footprint_width, m.spec.footprint_height)
                      for m in pcr_modules)
        assert side >= max_dim

    def test_scales_with_peak_demand(self, pcr_modules):
        loose = default_core_side(pcr_modules, slack=4.0)
        tight = default_core_side(pcr_modules, slack=1.0)
        assert loose > tight

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            default_core_side([])


class TestSAPlacer:
    def test_result_is_feasible_and_normalized(self, sa_result):
        p = sa_result.placement
        p.validate()
        bb = p.bounding_box()
        assert (bb.x, bb.y) == (1, 1)

    def test_beats_or_matches_greedy(self, sa_result, greedy_result):
        """The paper's headline: SA 63 cells vs greedy 84 (25% less)."""
        assert sa_result.area_cells < greedy_result.area_cells

    def test_area_near_paper_optimum(self, sa_result):
        """Paper: 63 cells. Leave slack for SA noise with the fast preset."""
        assert sa_result.area_cells <= 72

    def test_deterministic_with_seed(self, pcr, sa_result):
        placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
        again = placer.place(pcr.schedule, pcr.binding)
        assert again.area_cells == sa_result.area_cells
        assert {m.op_id: (m.x, m.y, m.rotated) for m in again.placement} == {
            m.op_id: (m.x, m.y, m.rotated) for m in sa_result.placement
        }

    def test_stats_populated(self, sa_result):
        s = sa_result.stats
        assert s.evaluations > 0
        assert s.stop_reason in ("window-frozen", "min-temp", "max-rounds")

    def test_respects_explicit_core(self, pcr):
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), core_width=14, core_height=14, seed=1
        )
        result = placer.place(pcr.schedule, pcr.binding)
        result.placement.validate()

    def test_no_rotation_mode(self, pcr):
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), allow_rotation=False, seed=4
        )
        result = placer.place(pcr.schedule, pcr.binding)
        assert all(not m.rotated for m in result.placement)


class TestTwoStagePlacer:
    def test_stage2_feasible(self, two_stage_result):
        two_stage_result.placement.validate()

    def test_fti_improves(self, two_stage_result):
        """The whole point of LTSA: stage 2 buys fault tolerance."""
        assert two_stage_result.fti >= two_stage_result.fti_stage1.fti

    def test_reports_both_stages(self, two_stage_result):
        assert two_stage_result.stage1.area_cells > 0
        assert two_stage_result.stage2.area_cells > 0
        assert 0 <= two_stage_result.fti <= 1

    def test_percentage_metrics(self, two_stage_result):
        r = two_stage_result
        assert r.area_increase_pct == pytest.approx(
            100 * (r.stage2.area_mm2 / r.stage1.area_mm2 - 1)
        )

    def test_invalid_expansion(self):
        from repro.placement.two_stage import TwoStagePlacer
        with pytest.raises(ValueError):
            TwoStagePlacer(expansion=0.5)
