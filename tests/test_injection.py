"""Tests for fault injection and Monte-Carlo survival estimation."""

import pytest

from repro.fault.fti import compute_fti
from repro.fault.injection import FaultInjector, estimate_survival_probability
from repro.fault.models import wearout_weight_fn
from repro.geometry import Point
from repro.grid.array import MicrofluidicArray


class TestFaultInjector:
    def test_uniform_cell_in_bounds(self):
        inj = FaultInjector(seed=1)
        for _ in range(50):
            p = inj.random_cell(7, 9)
            assert 1 <= p.x <= 7 and 1 <= p.y <= 9

    def test_deterministic_with_seed(self):
        a = [FaultInjector(seed=9).random_cell(10, 10) for _ in range(5)]
        b = [FaultInjector(seed=9).random_cell(10, 10) for _ in range(5)]
        assert a == b

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            FaultInjector(seed=0).random_cell(0, 5)

    def test_inject_marks_array(self):
        array = MicrofluidicArray(5, 5)
        cell = FaultInjector(seed=3).inject(array)
        assert array.is_faulty(cell)
        assert array.faulty_cells() == [cell]

    def test_inject_skips_already_faulty(self):
        array = MicrofluidicArray(2, 1)
        inj = FaultInjector(seed=3)
        first = inj.inject(array)
        second = inj.inject(array)
        assert first != second
        with pytest.raises(ValueError):
            inj.inject(array)  # no healthy cells left

    def test_weighted_model(self):
        # All weight on (1, 1): every draw must return it.
        inj = FaultInjector(
            seed=5, weight_fn=lambda p: 1.0 if p == Point(1, 1) else 0.0
        )
        assert all(inj.random_cell(4, 4) == Point(1, 1) for _ in range(10))

    def test_negative_weights_rejected(self):
        inj = FaultInjector(seed=5, weight_fn=lambda p: -1.0)
        with pytest.raises(ValueError):
            inj.random_cell(3, 3)

    def test_wearout_hazard_biases_sampling_deterministically(self):
        """`wearout_weight_fn` plugs actuation counts into the injector
        — the non-uniform failure model its docstring promised. With
        one cell carrying 99x the baseline weight on a 4x4 array, that
        cell must dominate the draws, and the biased stream must stay
        bit-identical for a fixed seed."""
        hot = Point(2, 3)
        weight = wearout_weight_fn({hot: 99}, baseline=1.0)

        draws = [FaultInjector(seed=11, weight_fn=weight).random_cell(4, 4)
                 for _ in range(1)]
        repeat = [FaultInjector(seed=11, weight_fn=weight).random_cell(4, 4)
                  for _ in range(1)]
        assert draws == repeat

        inj = FaultInjector(seed=11, weight_fn=weight)
        picks = [inj.random_cell(4, 4) for _ in range(200)]
        # Expected hot-cell share: 100 / (100 + 15) ~ 87%; demand well
        # above the 1/16 uniform share but below certainty.
        share = picks.count(hot) / len(picks)
        assert 0.75 < share < 1.0
        assert any(p != hot for p in picks), "baseline keeps cold cells failable"


class TestSurvivalEstimate:
    def test_converges_to_fti(self, sa_result):
        """Under the paper's uniform single-fault model, survival
        probability *is* the FTI; the Monte-Carlo estimate must agree
        within sampling error."""
        fti = compute_fti(sa_result.placement).fti
        est = estimate_survival_probability(sa_result.placement, trials=400, seed=11)
        assert est == pytest.approx(fti, abs=0.09)

    def test_trials_validation(self, sa_result):
        with pytest.raises(ValueError):
            estimate_survival_probability(sa_result.placement, trials=0)
