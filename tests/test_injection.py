"""Tests for fault injection and Monte-Carlo survival estimation."""

import pytest

from repro.fault.fti import compute_fti
from repro.fault.injection import FaultInjector, estimate_survival_probability
from repro.geometry import Point
from repro.grid.array import MicrofluidicArray


class TestFaultInjector:
    def test_uniform_cell_in_bounds(self):
        inj = FaultInjector(seed=1)
        for _ in range(50):
            p = inj.random_cell(7, 9)
            assert 1 <= p.x <= 7 and 1 <= p.y <= 9

    def test_deterministic_with_seed(self):
        a = [FaultInjector(seed=9).random_cell(10, 10) for _ in range(5)]
        b = [FaultInjector(seed=9).random_cell(10, 10) for _ in range(5)]
        assert a == b

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            FaultInjector(seed=0).random_cell(0, 5)

    def test_inject_marks_array(self):
        array = MicrofluidicArray(5, 5)
        cell = FaultInjector(seed=3).inject(array)
        assert array.is_faulty(cell)
        assert array.faulty_cells() == [cell]

    def test_inject_skips_already_faulty(self):
        array = MicrofluidicArray(2, 1)
        inj = FaultInjector(seed=3)
        first = inj.inject(array)
        second = inj.inject(array)
        assert first != second
        with pytest.raises(ValueError):
            inj.inject(array)  # no healthy cells left

    def test_weighted_model(self):
        # All weight on (1, 1): every draw must return it.
        inj = FaultInjector(
            seed=5, weight_fn=lambda p: 1.0 if p == Point(1, 1) else 0.0
        )
        assert all(inj.random_cell(4, 4) == Point(1, 1) for _ in range(10))

    def test_negative_weights_rejected(self):
        inj = FaultInjector(seed=5, weight_fn=lambda p: -1.0)
        with pytest.raises(ValueError):
            inj.random_cell(3, 3)


class TestSurvivalEstimate:
    def test_converges_to_fti(self, sa_result):
        """Under the paper's uniform single-fault model, survival
        probability *is* the FTI; the Monte-Carlo estimate must agree
        within sampling error."""
        fti = compute_fti(sa_result.placement).fti
        est = estimate_survival_probability(sa_result.placement, trials=400, seed=11)
        assert est == pytest.approx(fti, abs=0.09)

    def test_trials_validation(self, sa_result):
        with pytest.raises(ValueError):
            estimate_survival_probability(sa_result.placement, trials=0)
