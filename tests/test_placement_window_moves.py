"""Tests for the controlling window and the four generation functions."""

import pytest

from repro.modules.library import MIXER_2X2, MIXER_2X4, MIXER_LINEAR_1X4
from repro.placement.model import PlacedModule, Placement
from repro.placement.moves import MoveGenerator
from repro.placement.window import ControllingWindow


def pm(op, spec=MIXER_2X2, x=1, y=1, start=0.0, stop=10.0, rotated=False):
    return PlacedModule(op_id=op, spec=spec, x=x, y=y, start=start, stop=stop, rotated=rotated)


def three_module_placement() -> Placement:
    p = Placement(14, 14)
    p.add(pm("a", x=1, y=1))
    p.add(pm("b", spec=MIXER_LINEAR_1X4, x=7, y=1, start=0, stop=5))
    p.add(pm("c", spec=MIXER_2X4, x=1, y=8, start=10, stop=13))
    return p


class TestControllingWindow:
    def test_full_span_at_initial_temp(self):
        w = ControllingWindow(initial_temp=1000, max_span=12)
        assert w.span(1000) == 12

    def test_min_span_near_zero(self):
        w = ControllingWindow(initial_temp=1000, max_span=12)
        assert w.span(1e-6) == 1
        assert w.is_frozen(1e-6)

    def test_span_monotone_in_temperature(self):
        w = ControllingWindow(initial_temp=1000, max_span=12, gamma=0.4)
        temps = [1000 * 0.9**k for k in range(60)]
        spans = [w.span(t) for t in temps]
        assert spans == sorted(spans, reverse=True)

    def test_span_clamped_above_initial_temp(self):
        w = ControllingWindow(initial_temp=1000, max_span=12)
        assert w.span(5000) == 12

    def test_gamma_controls_shrink_rate(self):
        fast = ControllingWindow(initial_temp=1000, max_span=12, gamma=1.0)
        slow = ControllingWindow(initial_temp=1000, max_span=12, gamma=0.2)
        assert fast.span(100) <= slow.span(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            ControllingWindow(initial_temp=0, max_span=5)
        with pytest.raises(ValueError):
            ControllingWindow(initial_temp=10, max_span=0)
        with pytest.raises(ValueError):
            ControllingWindow(initial_temp=10, max_span=5, min_span=6)
        with pytest.raises(ValueError):
            ControllingWindow(initial_temp=10, max_span=5, gamma=0)


class TestMoveGenerator:
    def make_mover(self, **kwargs) -> MoveGenerator:
        window = ControllingWindow(initial_temp=1000, max_span=10)
        defaults = dict(window=window, seed=5)
        defaults.update(kwargs)
        return MoveGenerator(**defaults)

    def test_propose_returns_new_object(self):
        p = three_module_placement()
        q = self.make_mover().propose(p, 1000)
        assert q is not p

    def test_propose_does_not_mutate_original(self):
        p = three_module_placement()
        snapshot = {m.op_id: (m.x, m.y, m.rotated) for m in p}
        mover = self.make_mover()
        for _ in range(100):
            mover.propose(p, 500)
        assert {m.op_id: (m.x, m.y, m.rotated) for m in p} == snapshot

    def test_moves_stay_in_core(self):
        p = three_module_placement()
        mover = self.make_mover()
        for _ in range(300):
            q = mover.propose(p, 1000)
            for m in q:
                fp = m.footprint
                assert fp.x >= 1 and fp.y >= 1
                assert fp.x2 <= q.core_width and fp.y2 <= q.core_height
            p = q

    def test_single_only_never_swaps(self):
        p = three_module_placement()
        mover = self.make_mover(single_only=True, p_single=0.0)
        for _ in range(100):
            q = mover.propose(p, 500)
            # A swap changes exactly two modules; single moves change one.
            changed = [
                m.op_id for m in q
                if (m.x, m.y, m.rotated)
                != (p.get(m.op_id).x, p.get(m.op_id).y, p.get(m.op_id).rotated)
            ]
            assert len(changed) <= 1
            p = q

    def test_pair_interchange_occurs(self):
        p = three_module_placement()
        mover = self.make_mover(p_single=0.0, p_rotate=0.0)
        swapped = False
        for _ in range(50):
            q = mover.propose(p, 1000)
            changed = [
                m.op_id for m in q
                if (m.x, m.y) != (p.get(m.op_id).x, p.get(m.op_id).y)
            ]
            if len(changed) == 2:
                swapped = True
                break
        assert swapped

    def test_rotation_happens_for_rectangular_modules(self):
        p = three_module_placement()
        mover = self.make_mover(p_single=1.0, p_rotate=1.0)
        rotated_seen = False
        for _ in range(100):
            q = mover.propose(p, 500)
            if any(m.rotated != p.get(m.op_id).rotated for m in q):
                rotated_seen = True
                break
        assert rotated_seen

    def test_square_modules_never_rotate(self):
        p = Placement(10, 10)
        p.add(pm("a"))
        p.add(pm("b", x=6, y=6))
        mover = self.make_mover(p_rotate=1.0)
        for _ in range(100):
            q = mover.propose(p, 500)
            assert all(not m.rotated for m in q)
            p = q

    def test_displacement_bounded_by_window(self):
        p = three_module_placement()
        window = ControllingWindow(initial_temp=1000, max_span=2, min_span=1)
        mover = MoveGenerator(window=window, p_single=1.0, p_rotate=0.0, seed=3)
        for _ in range(200):
            q = mover.propose(p, 1000)  # span = 2 at T0
            for m in q:
                old = p.get(m.op_id)
                assert abs(m.x - old.x) <= 2 and abs(m.y - old.y) <= 2
            p = q

    def test_empty_placement_rejected(self):
        with pytest.raises(ValueError):
            self.make_mover().propose(Placement(5, 5), 100)

    def test_single_module_placement_never_swaps(self):
        p = Placement(10, 10)
        p.add(pm("solo"))
        mover = self.make_mover(p_single=0.0)  # would prefer swaps
        q = mover.propose(p, 100)
        assert len(q) == 1

    def test_parameter_validation(self):
        window = ControllingWindow(initial_temp=100, max_span=4)
        with pytest.raises(ValueError):
            MoveGenerator(window=window, p_single=1.5)
        with pytest.raises(ValueError):
            MoveGenerator(window=window, p_rotate=-0.1)

    def test_deterministic_with_seed(self):
        p = three_module_placement()
        def run(seed):
            mover = MoveGenerator(
                window=ControllingWindow(initial_temp=1000, max_span=10),
                seed=seed,
            )
            cur = p
            out = []
            for _ in range(20):
                cur = mover.propose(cur, 700)
                out.append({m.op_id: (m.x, m.y, m.rotated) for m in cur})
            return out
        assert run(42) == run(42)
        assert run(42) != run(43)
