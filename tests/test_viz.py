"""Tests for ASCII and SVG rendering."""

import xml.etree.ElementTree as ET

from repro.assay.protocols.pcr import build_pcr_mixing_graph
from repro.fault.fti import compute_fti
from repro.modules.library import MIXER_2X2
from repro.placement.model import PlacedModule, Placement
from repro.viz.ascii_art import render_fti_map, render_gantt, render_placement
from repro.viz.svg import (
    fti_to_svg,
    graph_to_svg,
    placement_to_svg,
    save_svg,
    schedule_to_svg,
)


def small_placement() -> Placement:
    p = Placement(10, 10)
    p.add(PlacedModule("A1", MIXER_2X2, x=1, y=1, start=0, stop=10))
    p.add(PlacedModule("B2", MIXER_2X2, x=1, y=1, start=10, stop=20))
    p.add(PlacedModule("C3", MIXER_2X2, x=5, y=1, start=0, stop=10))
    return p


class TestAsciiPlacement:
    def test_merged_view_marks_reuse(self):
        art = render_placement(small_placement())
        assert "*" in art  # A1/B2 share cells across time
        assert "reused" in art

    def test_time_cut_shows_only_active(self):
        art = render_placement(small_placement(), at_time=15, legend=False)
        # Only B2 is active at t=15; its letter is B (second added).
        assert "B" in art
        assert "A" not in art.replace("A1", "")  # no A cells drawn

    def test_legend_lists_modules(self):
        art = render_placement(small_placement())
        for op in ("A1", "B2", "C3"):
            assert op in art

    def test_dimensions_match_bounding_array(self, sa_result):
        art = render_placement(sa_result.placement, legend=False)
        w, h = sa_result.placement.array_dims()
        assert len(art.splitlines()) == h + 1  # rows + x-axis line

    def test_core_view(self):
        art = render_placement(small_placement(), use_core=True, legend=False)
        assert len(art.splitlines()) == 11


class TestAsciiGantt:
    def test_gantt_contains_all_ops(self, pcr):
        chart = render_gantt(pcr.schedule)
        for op in ("M1", "M7"):
            assert op in chart

    def test_gantt_bar_lengths_scale(self, pcr):
        chart = render_gantt(pcr.schedule, width=38)  # 2 cols per second
        rows = {line.split("|")[0].strip(): line for line in chart.splitlines()[2:]}
        assert rows["M1"].count("#") == 2 * rows["M2"].count("#")  # 10 s vs 5 s


class TestAsciiFtiMap:
    def test_map_reflects_report(self, sa_result):
        report = compute_fti(sa_result.placement)
        art = render_fti_map(report)
        assert art.count("+") % report.width in range(report.width)
        total_marks = art.count("+") + art.count("x")
        assert total_marks == report.cell_count
        assert f"{report.fti:.4f}" in art


class TestSvg:
    def test_placement_svg_is_valid_xml(self, sa_result):
        svg = placement_to_svg(sa_result.placement, title="min-area")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "min-area" in svg

    def test_placement_svg_labels_modules(self, sa_result):
        svg = placement_to_svg(sa_result.placement)
        for pm in sa_result.placement:
            assert pm.op_id in svg

    def test_placement_cut_draws_subset(self):
        p = small_placement()
        full = placement_to_svg(p)
        cut = placement_to_svg(p, at_time=15)
        assert "B2" in cut and "A1" not in cut
        assert "A1" in full

    def test_schedule_svg(self, pcr):
        svg = schedule_to_svg(pcr.schedule)
        ET.fromstring(svg)
        assert "M7" in svg

    def test_graph_svg(self):
        svg = graph_to_svg(build_pcr_mixing_graph())
        ET.fromstring(svg)
        for op in ("M1", "M4", "M7"):
            assert op in svg
        assert "mix" in svg

    def test_save_svg(self, tmp_path, pcr):
        out = save_svg(schedule_to_svg(pcr.schedule), tmp_path / "sub" / "fig6.svg")
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_fti_svg(self, sa_result):
        report = compute_fti(sa_result.placement)
        svg = fti_to_svg(report)
        ET.fromstring(svg)
        # One rect per cell plus the caption.
        assert svg.count("<rect") == report.cell_count
        assert f"{report.fti:.4f}" in svg
