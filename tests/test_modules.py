"""Unit tests for module specs and the standard library (Table 1)."""

import pytest

from repro.geometry import Rect
from repro.modules.kinds import ModuleKind
from repro.modules.library import (
    MIXER_2X2,
    MIXER_2X3,
    MIXER_2X4,
    MIXER_LINEAR_1X4,
    ModuleLibrary,
    standard_library,
)
from repro.modules.module import ModuleSpec


class TestModuleSpecGeometry:
    def test_segregation_ring_adds_two(self):
        # Table 1: 2x2 functional -> 4x4 cells.
        assert MIXER_2X2.footprint_width == 4
        assert MIXER_2X2.footprint_height == 4

    def test_linear_mixer_footprint(self):
        # Table 1: 4-electrode linear array -> 3x6 cells.
        assert sorted((MIXER_LINEAR_1X4.footprint_width, MIXER_LINEAR_1X4.footprint_height)) == [3, 6]

    def test_2x3_mixer_footprint(self):
        assert sorted((MIXER_2X3.footprint_width, MIXER_2X3.footprint_height)) == [4, 5]

    def test_2x4_mixer_footprint(self):
        assert sorted((MIXER_2X4.footprint_width, MIXER_2X4.footprint_height)) == [4, 6]

    def test_footprint_area(self):
        assert MIXER_2X2.footprint_area == 16
        assert MIXER_2X4.footprint_area == 24

    def test_is_square(self):
        assert MIXER_2X2.is_square
        assert not MIXER_LINEAR_1X4.is_square

    def test_footprint_at(self):
        assert MIXER_2X2.footprint_at(3, 4) == Rect(3, 4, 4, 4)

    def test_footprint_at_rotated(self):
        fp = MIXER_LINEAR_1X4.footprint_at(1, 1, rotated=True)
        assert (fp.width, fp.height) == (3, 6)

    def test_functional_inside_footprint(self):
        fp = MIXER_2X3.footprint_at(2, 2)
        fr = MIXER_2X3.functional_at(2, 2)
        assert fp.contains_rect(fr)
        assert fr == fp.inset(1)

    def test_dims_rotation(self):
        w, h = MIXER_LINEAR_1X4.dims()
        assert MIXER_LINEAR_1X4.dims(rotated=True) == (h, w)

    def test_zero_segregation(self):
        spec = ModuleSpec("bare", ModuleKind.DETECTOR, 1, 1, 5.0, segregation=0)
        assert spec.footprint_area == 1
        assert spec.functional_at(3, 3) == spec.footprint_at(3, 3)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ModuleSpec("bad", ModuleKind.MIXER, 0, 2, 5.0)
        with pytest.raises(ValueError):
            ModuleSpec("bad", ModuleKind.MIXER, 2, 2, 0.0)
        with pytest.raises(ValueError):
            ModuleSpec("bad", ModuleKind.MIXER, 2, 2, 5.0, segregation=-1)


class TestMixingTimes:
    """Table 1 mixing times (from Paik et al. [18])."""

    def test_paper_durations(self):
        assert MIXER_2X2.duration_s == 10.0
        assert MIXER_LINEAR_1X4.duration_s == 5.0
        assert MIXER_2X3.duration_s == 6.0
        assert MIXER_2X4.duration_s == 3.0

    def test_bigger_mixers_are_faster(self):
        # The Paik et al. trend the paper's binding exploits.
        assert MIXER_2X4.duration_s < MIXER_2X3.duration_s < MIXER_2X2.duration_s


class TestModuleLibrary:
    def test_standard_library_contents(self):
        lib = standard_library()
        for name in ("mixer-2x2", "mixer-linear-1x4", "mixer-2x3", "mixer-2x4",
                     "storage-1x1", "detector-1x1"):
            assert name in lib

    def test_get_unknown_raises_with_candidates(self):
        lib = standard_library()
        with pytest.raises(KeyError, match="mixer-2x2"):
            lib.get("nonexistent")

    def test_duplicate_name_rejected(self):
        lib = standard_library()
        with pytest.raises(ValueError):
            lib.add(MIXER_2X2)

    def test_by_kind_sorted_fastest_first(self):
        lib = standard_library()
        mixers = lib.by_kind(ModuleKind.MIXER)
        assert [m.duration_s for m in mixers] == sorted(m.duration_s for m in mixers)

    def test_fastest_mixer(self):
        assert standard_library().fastest(ModuleKind.MIXER).name == "mixer-2x4"

    def test_smallest_mixer(self):
        assert standard_library().smallest(ModuleKind.MIXER).name == "mixer-2x2"

    def test_fastest_missing_kind(self):
        with pytest.raises(KeyError):
            ModuleLibrary().fastest(ModuleKind.MIXER)

    def test_len_and_iter(self):
        lib = standard_library()
        assert len(lib) == len(list(lib))
