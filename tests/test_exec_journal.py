"""Crash-safety semantics of :mod:`repro.exec.journal`."""

from __future__ import annotations

import json

import pytest

from repro.exec import CampaignJournal, NullJournal, load_journal
from repro.util.errors import JournalError


def test_append_writes_versioned_jsonl(tmp_path):
    path = tmp_path / "campaign.jsonl"
    with CampaignJournal(path) as journal:
        journal.append("batch-scenario", "pcr|auto|center", {"makespan_s": 12.5})
        journal.append("batch-scenario", "pcr|auto|corner", {"makespan_s": 13.0})
        assert journal.appended == 2
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first == {
        "v": 1,
        "kind": "batch-scenario",
        "key": "pcr|auto|center",
        "record": {"makespan_s": 12.5},
    }


def test_no_append_never_touches_the_file(tmp_path):
    path = tmp_path / "untouched.jsonl"
    with CampaignJournal(path):
        pass
    assert not path.exists()


def test_load_round_trips_and_last_write_wins(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.append("k", "a", {"x": 1})
        journal.append("k", "b", {"x": 2})
        journal.append("k", "a", {"x": 3})
    assert load_journal(path) == {"a": {"x": 3}, "b": {"x": 2}}


def test_kind_filters_producers_sharing_a_file(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.append("batch-scenario", "a", {"x": 1})
        journal.append("recovery-scenario", "b", {"x": 2})
    assert load_journal(path, kind="batch-scenario") == {"a": {"x": 1}}
    assert load_journal(path, kind="recovery-scenario") == {"b": {"x": 2}}


def test_torn_final_line_is_the_tolerated_kill_signature(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.append("k", "a", {"x": 1})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"v":1,"kind":"k","key":"b","rec')  # kill -9 mid-write
    assert load_journal(path) == {"a": {"x": 1}}


def test_mid_file_corruption_is_fatal(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('not json at all\n{"v":1,"kind":"k","key":"a","record":{}}\n')
    with pytest.raises(JournalError, match="line 1"):
        load_journal(path)


def test_line_that_parses_but_is_not_a_record_is_fatal(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"some": "other schema"}\n{"v":1,"kind":"k","key":"a","record":{}}\n')
    with pytest.raises(JournalError, match="not a journal record"):
        load_journal(path)


def test_missing_file_is_unreadable(tmp_path):
    with pytest.raises(JournalError, match="cannot read"):
        load_journal(tmp_path / "nope.jsonl")


def test_append_seals_a_torn_tail_before_writing(tmp_path):
    # Regression: appending after a torn final write must not glue the
    # new record onto the fragment — that would turn a tolerated
    # final-line tear into fatal mid-file corruption on the next load.
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.append("k", "a", {"x": 1})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"v":1,"kind":"k","key":"b"')
    with CampaignJournal(path) as journal:
        journal.append("k", "c", {"x": 3})
    assert load_journal(path) == {"a": {"x": 1}, "c": {"x": 3}}


def test_resume_appends_to_existing_journal(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.append("k", "a", {"x": 1})
    with CampaignJournal(path) as journal:
        journal.append("k", "b", {"x": 2})
    assert load_journal(path) == {"a": {"x": 1}, "b": {"x": 2}}


def test_null_journal_is_inert(tmp_path):
    with NullJournal() as journal:
        journal.append("k", "a", {"x": 1})
    assert journal.appended == 0
