"""Unit tests for PlacedModule and Placement (the modified 2-D model)."""

import pytest

from repro.geometry import Interval, Point, Rect
from repro.modules.library import MIXER_2X2, MIXER_2X4, MIXER_LINEAR_1X4
from repro.placement.model import PlacedModule, Placement
from repro.util.errors import PlacementError


def pm(op, spec=MIXER_2X2, x=1, y=1, start=0.0, stop=10.0, rotated=False):
    return PlacedModule(op_id=op, spec=spec, x=x, y=y, start=start, stop=stop, rotated=rotated)


class TestPlacedModule:
    def test_footprint(self):
        m = pm("a", x=2, y=3)
        assert m.footprint == Rect(2, 3, 4, 4)

    def test_rotated_footprint(self):
        m = pm("a", spec=MIXER_LINEAR_1X4, rotated=True)
        assert (m.footprint.width, m.footprint.height) == (3, 6)

    def test_functional_region_inset(self):
        m = pm("a", x=2, y=3)
        assert m.functional_region == Rect(3, 4, 2, 2)

    def test_interval_and_box(self):
        m = pm("a", start=5, stop=15)
        assert m.interval == Interval(5, 15)
        assert m.box.volume == 160.0

    def test_moved_to(self):
        m = pm("a").moved_to(5, 6)
        assert (m.x, m.y) == (5, 6)
        assert not m.rotated

    def test_moved_to_with_rotation(self):
        m = pm("a", spec=MIXER_2X4).moved_to(1, 1, rotated=True)
        assert m.rotated

    def test_conflicts_space_and_time(self):
        a = pm("a", x=1, y=1, start=0, stop=10)
        b_same_cells_later = pm("b", x=1, y=1, start=10, stop=20)
        c_overlap = pm("c", x=3, y=3, start=5, stop=12)
        assert not a.conflicts(b_same_cells_later)
        assert a.conflicts(c_overlap)

    def test_dims(self):
        m = pm("a", spec=MIXER_LINEAR_1X4)
        assert m.dims == (6, 3)


class TestPlacementContainer:
    def test_add_and_get(self):
        p = Placement(10, 10)
        m = pm("a")
        p.add(m)
        assert p.get("a") is m
        assert "a" in p and len(p) == 1

    def test_duplicate_rejected(self):
        p = Placement(10, 10)
        p.add(pm("a"))
        with pytest.raises(PlacementError):
            p.add(pm("a", x=5, y=5))

    def test_out_of_core_rejected(self):
        p = Placement(5, 5)
        with pytest.raises(PlacementError):
            p.add(pm("a", x=3, y=3))  # 4x4 footprint exceeds 5x5 core

    def test_replace(self):
        p = Placement(10, 10)
        p.add(pm("a"))
        p.replace(pm("a", x=4, y=4))
        assert p.get("a").x == 4

    def test_replace_unknown(self):
        with pytest.raises(PlacementError):
            Placement(10, 10).replace(pm("a"))

    def test_copy_is_shallow_but_safe(self):
        p = Placement(10, 10)
        p.add(pm("a"))
        q = p.copy()
        q.replace(pm("a", x=5, y=5))
        assert p.get("a").x == 1

    def test_get_missing(self):
        with pytest.raises(PlacementError):
            Placement(5, 5).get("nope")


class TestAreaMetrics:
    def test_bounding_box(self):
        p = Placement(20, 20)
        p.add(pm("a", x=2, y=2))             # 4x4 at (2,2) -> x2-5, y2-5
        p.add(pm("b", x=8, y=3, start=20, stop=25))
        bb = p.bounding_box()
        assert bb == Rect(2, 2, 10, 5)

    def test_area_cells_and_mm2(self):
        p = Placement(20, 20)
        p.add(pm("a", x=1, y=1))
        assert p.area_cells == 16
        assert p.area_mm2 == pytest.approx(36.0)  # 16 * 2.25

    def test_empty_has_no_bbox(self):
        with pytest.raises(PlacementError):
            Placement(5, 5).bounding_box()

    def test_normalized_moves_origin(self):
        p = Placement(20, 20)
        p.add(pm("a", x=7, y=9))
        n = p.normalized()
        assert n.get("a").x == 1 and n.get("a").y == 1
        assert n.core_width == 4 and n.core_height == 4

    def test_normalized_preserves_relative_geometry(self):
        p = Placement(20, 20)
        p.add(pm("a", x=5, y=5))
        p.add(pm("b", x=10, y=7, start=20, stop=22))
        n = p.normalized()
        assert n.get("b").x - n.get("a").x == 5
        assert n.get("b").y - n.get("a").y == 2


class TestFeasibility:
    def test_overlap_volume(self):
        p = Placement(20, 20)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=3, y=3, start=5, stop=15))
        # 2x2 cells shared for 5 s.
        assert p.overlap_volume() == 20.0
        assert not p.is_feasible()

    def test_time_disjoint_reuse_is_feasible(self):
        p = Placement(20, 20)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=1, y=1, start=10, stop=20))
        assert p.is_feasible()
        p.validate()

    def test_conflicting_pairs(self):
        p = Placement(20, 20)
        p.add(pm("a", x=1, y=1))
        p.add(pm("b", x=2, y=2))
        pairs = p.conflicting_pairs()
        assert len(pairs) == 1
        assert {pairs[0][0].op_id, pairs[0][1].op_id} == {"a", "b"}

    def test_validate_raises_with_detail(self):
        p = Placement(20, 20)
        p.add(pm("a", x=1, y=1))
        p.add(pm("b", x=2, y=2))
        with pytest.raises(PlacementError, match="overlaps"):
            p.validate()

    def test_overlap_volume_against(self):
        p = Placement(20, 20)
        p.add(pm("a", x=1, y=1))
        other = pm("b", x=2, y=2)
        assert p.overlap_volume_against(other) > 0


class TestTemporalViews:
    def build(self) -> Placement:
        p = Placement(20, 20)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=6, y=1, start=5, stop=15))
        p.add(pm("c", x=1, y=1, start=10, stop=20))
        return p

    def test_time_planes(self):
        assert self.build().time_planes() == [0, 5, 10]

    def test_event_times(self):
        assert self.build().event_times() == [0, 5, 10, 15, 20]

    def test_active_at(self):
        p = self.build()
        assert {m.op_id for m in p.active_at(7)} == {"a", "b"}
        assert {m.op_id for m in p.active_at(10)} == {"b", "c"}

    def test_overlapping_span_with_exclude(self):
        p = self.build()
        mods = p.overlapping_span(Interval(0, 10), exclude="a")
        assert {m.op_id for m in mods} == {"b"}

    def test_makespan(self):
        assert self.build().makespan() == 20

    def test_occupancy_at(self):
        p = self.build()
        grid = p.occupancy_at(0)
        assert grid.is_occupied((1, 1))
        assert not grid.is_occupied((6, 1))  # b not active yet

    def test_occupancy_for_span_marks_extra_cells(self):
        p = self.build()
        grid = p.occupancy_for_span(
            Interval(0, 10), exclude="a", extra_occupied=[Point(15, 15)]
        )
        assert grid.is_occupied((15, 15))
        assert not grid.is_occupied((1, 1))  # a excluded
        assert grid.is_occupied((6, 1))      # b overlaps the span
