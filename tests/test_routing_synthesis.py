"""Tests for the routing-synthesis stage and its flow/simulator integration."""

import pytest

from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.geometry import Point
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.routing import RoutingSynthesizer
from repro.routing.compact import compact_routes
from repro.routing.prioritized import PrioritizedRouter
from repro.routing.timegrid import TimeGrid
from repro.routing.plan import Net
from repro.sim.engine import BiochipSimulator
from repro.synthesis.flow import SynthesisFlow


def make_flow(**kwargs):
    return SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2),
        max_concurrent_ops=3,
        cell_capacity=63,
        **kwargs,
    )


@pytest.fixture(scope="module")
def routed_result():
    flow = make_flow(route=True)
    return flow.run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING)


class TestFlowIntegration:
    def test_flow_without_route_has_no_plan(self):
        result = make_flow().run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING)
        assert result.routing_plan is None
        assert result.total_route_steps is None
        assert result.max_net_latency is None
        assert result.routability is None
        assert "routing:" not in result.summary()

    def test_flow_with_route_produces_verified_plan(self, routed_result):
        plan = routed_result.routing_plan
        assert plan is not None
        plan.verify()  # raises on any conflict
        # PCR mixing stage: 6 placed-to-placed dependency edges.
        assert plan.routed_count == 6
        assert plan.routability == 1.0

    def test_result_metrics_mirror_plan(self, routed_result):
        plan = routed_result.routing_plan
        assert routed_result.total_route_steps == plan.total_route_steps
        assert routed_result.max_net_latency == plan.max_net_latency
        assert routed_result.routability == plan.routability
        assert "routing:" in routed_result.summary()

    def test_epochs_follow_schedule_instants(self, routed_result):
        plan = routed_result.routing_plan
        times = [e.time_s for e in plan.epochs]
        assert times == sorted(times)
        for epoch in plan.epochs:
            for rn in epoch.nets:
                consumer = rn.net.consumer
                assert routed_result.schedule.start(consumer) == epoch.time_s

    def test_plan_respects_known_faulty_cells(self):
        flow = make_flow(route=True)
        result = flow.run(
            build_pcr_mixing_graph(),
            explicit_binding=PCR_BINDING,
            faulty_cells=[(4, 3)],
        )
        plan = result.routing_plan
        plan.verify()
        m = plan.margin
        bad = Point(4 + m, 3 + m)
        for rn in plan.nets:
            assert bad not in rn.cells

    def test_flow_seed_isolated_from_global_random(self):
        import random

        random.seed(123)
        before = random.random()
        random.seed(123)
        make_flow(route=True).run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING)
        # The flow must not consume from the module-level generator.
        assert random.random() == before


class TestFanOutHolds:
    def test_staggered_fanout_models_remainder_as_hold_net(self):
        # A's product feeds B (immediately) and C (later). The share
        # remaining for C must exist as a zero-ish-move hold net so
        # traffic avoids it and the verifier can see it.
        from repro.assay.graph import SequencingGraph
        from repro.assay.operations import Operation, OperationType
        from repro.placement.greedy import GreedyPlacer
        from repro.synthesis.binder import ResourceBinder
        from repro.synthesis.scheduler import integerized, list_schedule

        g = SequencingGraph("fanout")
        for op in ("A", "B", "C"):
            g.add_operation(Operation(op, OperationType.MIX))
        g.add_dependency("A", "B")
        g.add_dependency("A", "C")
        binding = ResourceBinder().bind(g, strategy="smallest")
        schedule = integerized(
            list_schedule(g, binding.durations(), max_concurrent_ops=1)
        )
        placement = GreedyPlacer().place(schedule, binding).placement
        plan = RoutingSynthesizer().synthesize(g, schedule, placement)
        plan.verify()
        assert plan.routability == 1.0
        ids = [rn.net.net_id for rn in plan.nets]
        assert "A@hold" in ids  # the remainder share is modeled
        hold = next(rn for rn in plan.nets if rn.net.net_id == "A@hold")
        assert hold.net.source == hold.net.goal


class TestSimulatorReplay:
    def test_replay_uses_planned_routes(self, routed_result):
        r = routed_result
        sim = BiochipSimulator(
            r.graph, r.schedule, r.binding, r.placement_result.placement,
            routing_plan=r.routing_plan,
        )
        report = sim.run()
        assert report.completed
        assert report.planned_transports > 0
        assert any("planned route" in e.detail for e in report.events_of_kind("transport"))

    def test_replay_matches_serial_product(self, routed_result):
        r = routed_result
        baseline = BiochipSimulator(
            r.graph, r.schedule, r.binding, r.placement_result.placement
        ).run()
        replay = BiochipSimulator(
            r.graph, r.schedule, r.binding, r.placement_result.placement,
            routing_plan=r.routing_plan,
        ).run()
        assert baseline.planned_transports == 0
        assert replay.product.reagents == baseline.product.reagents
        assert replay.realized_makespan == baseline.realized_makespan

    def test_replay_degrades_to_router_under_faults(self, routed_result):
        r = routed_result
        sim = BiochipSimulator(
            r.graph, r.schedule, r.binding, r.placement_result.placement,
            routing_plan=r.routing_plan,
        )
        report = sim.run(faults=[(8.0, sim.module_cell("M6"))])
        assert report.completed
        assert report.relocations  # the fault really hit a module


class TestCompaction:
    def test_compaction_never_lengthens(self):
        grid = TimeGrid(9, 9)
        nets = [
            Net("a", Point(1, 5), Point(9, 5), priority=1.0),
            Net("b", Point(5, 1), Point(5, 9)),
        ]
        router = PrioritizedRouter()
        horizon = router.default_horizon(grid, nets)
        routed, failed = router.route_all(nets, grid, horizon)
        assert not failed
        before = {rn.net.net_id: rn.latency for rn in routed}
        compacted, report = compact_routes(routed, grid, router, horizon)
        for rn in compacted:
            assert rn.latency <= before[rn.net.net_id]
        assert report.steps_saved >= 0
        assert len(report.improvements) == 2
        assert "compaction" in str(report)

    def test_synthesizer_records_reports(self):
        flow = make_flow(route=True, routing_synthesizer=RoutingSynthesizer(compact=True))
        flow.run(build_pcr_mixing_graph(), explicit_binding=PCR_BINDING)
        reports = flow.routing_synthesizer.compaction_reports
        assert reports  # one per epoch that routed nets
        assert all(rep.steps_saved >= 0 for rep in reports)
