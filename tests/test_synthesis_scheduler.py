"""Unit tests for ASAP/ALAP/list scheduling and the Schedule container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assay.graph import SequencingGraph
from repro.assay.operations import Operation, OperationType
from repro.assay.protocols.pcr import build_pcr_mixing_graph
from repro.geometry import Interval
from repro.synthesis.schedule import Schedule
from repro.synthesis.scheduler import (
    alap_schedule,
    asap_schedule,
    integerized,
    list_schedule,
    remaining_path_lengths,
)
from repro.util.errors import ScheduleError

PCR_DURATIONS = {
    "M1": 10.0, "M2": 5.0, "M3": 6.0, "M4": 5.0,
    "M5": 5.0, "M6": 10.0, "M7": 3.0,
}


def chain(n: int = 3) -> SequencingGraph:
    g = SequencingGraph()
    prev = None
    for i in range(n):
        g.add_operation(Operation(f"op{i}", OperationType.MIX))
        if prev is not None:
            g.add_dependency(prev, f"op{i}")
        prev = f"op{i}"
    return g


class TestASAP:
    def test_pcr_asap_starts(self):
        g = build_pcr_mixing_graph()
        s = asap_schedule(g, PCR_DURATIONS)
        assert s.start("M1") == 0 and s.start("M4") == 0
        assert s.start("M5") == 10  # waits for M1
        assert s.start("M6") == 6   # waits for M3
        assert s.start("M7") == 16
        assert s.makespan == 19

    def test_asap_equals_critical_path(self):
        g = build_pcr_mixing_graph()
        s = asap_schedule(g, PCR_DURATIONS)
        assert s.makespan == g.critical_path_length(PCR_DURATIONS)

    def test_missing_duration(self):
        g = chain(2)
        with pytest.raises(ScheduleError):
            asap_schedule(g, {"op0": 1.0})

    def test_nonpositive_duration(self):
        g = chain(2)
        with pytest.raises(ScheduleError):
            asap_schedule(g, {"op0": 1.0, "op1": 0.0})


class TestALAP:
    def test_alap_meets_deadline(self):
        g = build_pcr_mixing_graph()
        s = alap_schedule(g, PCR_DURATIONS, deadline=25)
        assert s.makespan == 25
        s.validate_precedence(g)

    def test_alap_default_deadline_is_critical_path(self):
        g = build_pcr_mixing_graph()
        s = alap_schedule(g, PCR_DURATIONS)
        assert s.makespan == 19

    def test_critical_ops_coincide_with_asap(self):
        g = build_pcr_mixing_graph()
        asap = asap_schedule(g, PCR_DURATIONS)
        alap = alap_schedule(g, PCR_DURATIONS)
        for op in g.critical_path(PCR_DURATIONS):
            assert asap.start(op) == alap.start(op)

    def test_infeasible_deadline(self):
        g = build_pcr_mixing_graph()
        with pytest.raises(ScheduleError):
            alap_schedule(g, PCR_DURATIONS, deadline=10)

    def test_asap_never_later_than_alap(self):
        g = build_pcr_mixing_graph()
        asap = asap_schedule(g, PCR_DURATIONS)
        alap = alap_schedule(g, PCR_DURATIONS)
        for op in g:
            assert asap.start(op.id) <= alap.start(op.id)


class TestListSchedule:
    def test_unconstrained_matches_asap(self):
        g = build_pcr_mixing_graph()
        ls = list_schedule(g, PCR_DURATIONS)
        asap = asap_schedule(g, PCR_DURATIONS)
        for op in g:
            assert ls.start(op.id) == asap.start(op.id)

    def test_concurrency_cap_respected(self):
        g = build_pcr_mixing_graph()
        s = list_schedule(g, PCR_DURATIONS, max_concurrent_ops=2)
        assert s.max_concurrency() <= 2
        s.validate_precedence(g)

    def test_cap_three_gives_paper_consistent_schedule(self):
        g = build_pcr_mixing_graph()
        footprints = {"M1": 16, "M2": 18, "M3": 20, "M4": 18, "M5": 18, "M6": 16, "M7": 24}
        s = list_schedule(
            g, PCR_DURATIONS, max_concurrent_ops=3,
            cell_capacity=63, footprints=footprints,
        )
        assert s.peak_cell_demand(footprints) <= 63
        assert s.makespan == 19  # no makespan penalty vs ASAP
        s.validate_precedence(g)

    def test_cell_capacity_respected(self):
        g = build_pcr_mixing_graph()
        footprints = {"M1": 16, "M2": 18, "M3": 20, "M4": 18, "M5": 18, "M6": 16, "M7": 24}
        s = list_schedule(g, PCR_DURATIONS, cell_capacity=40, footprints=footprints)
        assert s.peak_cell_demand(footprints) <= 40
        s.validate_precedence(g)

    def test_cell_capacity_requires_footprints(self):
        g = build_pcr_mixing_graph()
        with pytest.raises(ScheduleError):
            list_schedule(g, PCR_DURATIONS, cell_capacity=40)

    def test_single_op_exceeding_capacity(self):
        g = build_pcr_mixing_graph()
        footprints = {op: 30 for op in PCR_DURATIONS}
        with pytest.raises(ScheduleError):
            list_schedule(g, PCR_DURATIONS, cell_capacity=20, footprints=footprints)

    def test_invalid_cap(self):
        g = chain(2)
        with pytest.raises(ScheduleError):
            list_schedule(g, {"op0": 1, "op1": 1}, max_concurrent_ops=0)

    def test_priority_is_remaining_path(self):
        g = build_pcr_mixing_graph()
        prio = remaining_path_lengths(g, PCR_DURATIONS)
        # M3 -> M6 -> M7 = 19 is the critical chain.
        assert prio["M3"] == 19
        assert prio["M1"] == 18
        assert prio["M7"] == 3

    def test_cap_one_serializes_everything(self):
        g = build_pcr_mixing_graph()
        s = list_schedule(g, PCR_DURATIONS, max_concurrent_ops=1)
        assert s.max_concurrency() == 1
        assert s.makespan == sum(PCR_DURATIONS.values())

    @given(cap=st.integers(1, 7))
    def test_any_cap_preserves_precedence(self, cap):
        g = build_pcr_mixing_graph()
        s = list_schedule(g, PCR_DURATIONS, max_concurrent_ops=cap)
        s.validate_precedence(g)


def peak_parked(g: SequencingGraph, sched: Schedule) -> int:
    """Max count of edges whose producer finished but consumer has not
    started, over all completion instants."""
    stop = {op.id: sched.stop(op.id) for op in g}
    start = {op.id: sched.start(op.id) for op in g}
    edges = [(u.id, v) for u in g for v in g.successors(u.id)]
    return max(
        sum(1 for u, v in edges if stop[u] <= t < start[v])
        for t in sorted(set(stop.values()))
    )


class TestMaxParked:
    """The storage-pressure bound on finished-but-unconsumed products."""

    def wide_fanin(self, pairs: int = 6) -> SequencingGraph:
        """Many independent dispense pairs feeding one mix each: with
        unconstrained priority every dispense front-loads at t=0 and
        the products pile up waiting for their (serialized) mixes."""
        g = SequencingGraph()
        for i in range(pairs):
            for tag in ("a", "b"):
                g.add_operation(
                    Operation(f"d{tag}{i}", OperationType.DISPENSE)
                )
            g.add_operation(Operation(f"m{i}", OperationType.MIX))
            g.add_dependency(f"da{i}", f"m{i}")
            g.add_dependency(f"db{i}", f"m{i}")
        return g

    def durations(self, g: SequencingGraph) -> dict[str, float]:
        return {
            op.id: 2.0 if op.type is OperationType.DISPENSE else 10.0
            for op in g
        }

    def test_unbounded_piles_up(self):
        g = self.wide_fanin()
        s = list_schedule(g, self.durations(g), max_concurrent_ops=1)
        assert peak_parked(g, s) >= 8

    def test_bound_caps_the_pile(self):
        g = self.wide_fanin()
        s = list_schedule(
            g, self.durations(g), max_concurrent_ops=1, max_parked=2
        )
        s.validate_precedence(g)
        assert peak_parked(g, s) <= 2
        assert len(s) == len(g)

    def test_default_is_unchanged(self):
        g = self.wide_fanin()
        a = list_schedule(g, self.durations(g), max_concurrent_ops=2)
        b = list_schedule(
            g, self.durations(g), max_concurrent_ops=2, max_parked=None
        )
        assert a.to_dict() == b.to_dict()

    def test_invalid_bound(self):
        g = chain(2)
        with pytest.raises(ScheduleError, match="max_parked"):
            list_schedule(g, {"op0": 1.0, "op1": 1.0}, max_parked=0)

    def test_bound_cannot_deadlock_a_chain(self):
        # A pure chain never parks more than one product; the bound is
        # irrelevant but must not stall the schedule.
        g = chain(5)
        durations = {f"op{i}": 1.0 for i in range(5)}
        s = list_schedule(g, durations, max_parked=1)
        assert len(s) == 5
        s.validate_precedence(g)

    @given(mp=st.integers(1, 4))
    def test_any_bound_schedules_everything(self, mp):
        g = self.wide_fanin(4)
        s = list_schedule(
            g, self.durations(g), max_concurrent_ops=2, max_parked=mp
        )
        assert len(s) == len(g)
        s.validate_precedence(g)


class TestScheduleContainer:
    def make(self) -> Schedule:
        return Schedule({
            "a": Interval(0, 5), "b": Interval(5, 9), "c": Interval(2, 7),
        })

    def test_lookup(self):
        s = self.make()
        assert s.interval("a") == Interval(0, 5)
        assert s.start("b") == 5 and s.stop("b") == 9

    def test_missing_op(self):
        with pytest.raises(ScheduleError):
            self.make().interval("zzz")

    def test_items_sorted_by_start(self):
        assert [op for op, _ in self.make().items()] == ["a", "c", "b"]

    def test_makespan(self):
        assert self.make().makespan == 9

    def test_event_times(self):
        assert self.make().event_times() == [0, 2, 5, 7, 9]

    def test_active_at(self):
        s = self.make()
        assert s.active_at(3) == ["a", "c"]
        assert s.active_at(5) == ["b", "c"]  # half-open: a retired

    def test_concurrency_profile(self):
        s = self.make()
        profile = dict(s.concurrency_profile())
        assert profile[0] == 1 and profile[2] == 2 and profile[9] == 0

    def test_cell_demand_profile(self):
        s = self.make()
        demand = dict(s.cell_demand_profile({"a": 10, "b": 20, "c": 5}))
        assert demand[2] == 15
        assert demand[5] == 25

    def test_precedence_validation_failure(self):
        g = chain(2)
        bad = Schedule({"op0": Interval(0, 5), "op1": Interval(3, 6)})
        with pytest.raises(ScheduleError, match="precedence"):
            bad.validate_precedence(g)

    def test_precedence_needs_all_ops(self):
        g = chain(2)
        partial = Schedule({"op0": Interval(0, 5)})
        with pytest.raises(ScheduleError):
            partial.validate_precedence(g)

    def test_integerized_snaps_floats(self):
        s = Schedule({"a": Interval(0.0000000001, 4.9999999999)})
        snapped = integerized(s)
        assert snapped.interval("a") == Interval(0, 5)
