"""Tests for the fault tolerance index.

The three FTI algorithms (paper MER procedure, summed-area-table
position counting, pure-Python brute force) are property-tested for
exact agreement on randomized placements — and FTI is checked against
first principles on hand-built configurations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault.fti import compute_fti
from repro.geometry import Point
from repro.modules.kinds import ModuleKind
from repro.modules.library import MIXER_2X2, MIXER_LINEAR_1X4, STORAGE_1X1
from repro.modules.module import ModuleSpec
from repro.placement.model import PlacedModule, Placement


def pm(op, spec=MIXER_2X2, x=1, y=1, start=0.0, stop=10.0, rotated=False):
    return PlacedModule(op_id=op, spec=spec, x=x, y=y, start=start, stop=stop, rotated=rotated)


class TestFTIBasics:
    def test_empty_array_fully_covered(self):
        p = Placement(6, 6)
        p.add(pm("a", spec=STORAGE_1X1, x=1, y=1))
        report = compute_fti(p, width=6, height=6)
        # A 3x3 storage module on a 6x6 array can always relocate.
        assert report.fti == 1.0

    def test_fti_bounds(self, sa_result):
        report = compute_fti(sa_result.placement)
        assert 0.0 <= report.fti <= 1.0

    def test_fti_zero_when_module_fills_array(self):
        p = Placement(4, 4)
        p.add(pm("a", x=1, y=1))  # 4x4 module on a 4x4 array
        report = compute_fti(p)
        # No spare cells at all: every cell is used and immovable.
        assert report.fti == 0.0
        assert report.fault_tolerance_number == 0

    def test_unused_cells_always_covered(self):
        p = Placement(8, 4)
        p.add(pm("a", x=1, y=1))
        report = compute_fti(p, width=8, height=4)
        for x in range(5, 9):
            for y in range(1, 5):
                assert report.is_covered((x, y))

    def test_relocatable_module_covers_its_cells(self):
        p = Placement(8, 8)
        p.add(pm("a", x=1, y=1))
        # 8x8 array, one 4x4 module: a 4x4 empty region always remains.
        report = compute_fti(p, width=8, height=8)
        assert report.fti == 1.0
        assert report.per_module["a"].fully_relocatable

    def test_exact_spare_region_minus_fault(self):
        # 4x8 array, 4x4 module at left; spare 4x4 at right. Faulting a
        # module cell leaves the right 4x4 free -> covered. Faulting a
        # spare cell is trivially covered. FTI = 1.
        p = Placement(8, 4)
        p.add(pm("a", x=1, y=1))
        report = compute_fti(p, width=8, height=4)
        assert report.fti == 1.0

    def test_fault_in_unavoidable_column_not_covered(self):
        # 7x4 array: 4x4 module at x1-4, spare strip x5-7 (3 wide). The
        # module can shift right reusing its own cells, so faults in
        # columns 1-3 are covered — but EVERY 4-wide window contains
        # column 4, so its four cells are unavoidable.
        p = Placement(7, 4)
        p.add(pm("a", x=1, y=1))
        report = compute_fti(p, width=7, height=4)
        stuck = {Point(4, y) for y in range(1, 5)}
        assert report.uncovered == frozenset(stuck)
        assert report.fti == pytest.approx(24 / 28)

    def test_reuse_of_own_cells_allowed(self):
        # The module's own (non-faulty) cells count as free space for the
        # relocation target — paper: module "temporarily removed".
        p = Placement(5, 4)
        p.add(pm("a", x=1, y=1))  # 4x4 in a 5x4 array: one spare column
        report = compute_fti(p, width=5, height=4)
        # Fault at (1, 1): module can shift right one column, reusing
        # cells (2..4, *) and the spare column 5.
        assert report.is_covered((1, 1))
        # Fault in the middle column 3: any 4x4 region must contain it.
        assert not report.is_covered((3, 2))

    def test_concurrent_modules_block_relocation(self):
        p = Placement(8, 4)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=5, y=1, start=5, stop=12))  # occupies the spare
        report = compute_fti(p, width=8, height=4)
        # Neither module can relocate: the other blocks the only space.
        assert not report.per_module["a"].fully_relocatable
        assert not report.per_module["b"].fully_relocatable

    def test_time_disjoint_modules_free_each_other(self):
        p = Placement(8, 4)
        p.add(pm("a", x=1, y=1, start=0, stop=10))
        p.add(pm("b", x=5, y=1, start=10, stop=20))
        report = compute_fti(p, width=8, height=4)
        # b is NOT an obstacle for a (disjoint spans) and vice versa.
        assert report.fti == 1.0

    def test_rotation_enables_coverage(self):
        # 3x6 module on a 6x7 array: spare band is 6 wide x 1 tall plus
        # 3x7... construct: module (6 wide, 3 tall) at y=1; array 6x7;
        # free region 6x4: fits the module only unrotated (6x3) - fine;
        # with rotation also 3x6 fits? 6x4 cannot host 3x6. Use explicit check.
        p = Placement(6, 7)
        p.add(pm("a", spec=MIXER_LINEAR_1X4, x=1, y=1))
        with_rot = compute_fti(p, width=6, height=7, allow_rotation=True)
        without = compute_fti(p, width=6, height=7, allow_rotation=False)
        assert with_rot.fti >= without.fti

    def test_explicit_dims_must_contain_placement(self):
        p = Placement(10, 10)
        p.add(pm("a", x=5, y=5))
        with pytest.raises(ValueError):
            compute_fti(p, width=4, height=4)

    def test_unknown_method(self):
        p = Placement(6, 6)
        p.add(pm("a"))
        with pytest.raises(ValueError):
            compute_fti(p, method="magic")

    def test_report_accessors(self, sa_result):
        report = compute_fti(sa_result.placement)
        assert report.cell_count == report.width * report.height
        assert len(report.covered) + len(report.uncovered) == report.cell_count
        assert report.fault_tolerance_number == len(report.covered)
        assert "FTI" in str(report)


class TestPaperNumbers:
    def test_min_area_placement_has_low_fti(self, sa_result):
        """Paper Section 6.1: the min-area placement has FTI ~0.127 —
        compact placements are fragile. Our SA finds a different 63-cell
        packing, so we assert the *shape*: FTI well below 0.5."""
        report = compute_fti(sa_result.placement)
        assert report.fti < 0.5

    def test_denominator_is_bounding_array(self, sa_result):
        report = compute_fti(sa_result.placement)
        w, h = sa_result.placement.array_dims()
        assert report.cell_count == w * h


class TestMethodEquivalence:
    """All three FTI algorithms must agree exactly."""

    specs = st.sampled_from([MIXER_2X2, MIXER_LINEAR_1X4, STORAGE_1X1])

    @given(
        data=st.lists(
            st.tuples(
                specs,
                st.integers(1, 6),       # x
                st.integers(1, 6),       # y
                st.integers(0, 2),       # start slot
                st.booleans(),           # rotated
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_three_methods_agree(self, data):
        p = Placement(12, 12)
        for i, (spec, x, y, slot, rotated) in enumerate(data):
            w, h = spec.dims(rotated)
            x = min(x, 12 - w + 1)
            y = min(y, 12 - h + 1)
            candidate = PlacedModule(
                op_id=f"m{i}", spec=spec, x=x, y=y,
                start=slot * 10.0, stop=slot * 10.0 + 10.0, rotated=rotated,
            )
            if all(not candidate.conflicts(other) for other in p):
                p.add(candidate)
        reports = {
            method: compute_fti(p, width=12, height=12, method=method)
            for method in ("placements", "mer", "bruteforce")
        }
        assert reports["placements"].covered == reports["mer"].covered
        assert reports["mer"].covered == reports["bruteforce"].covered

    def test_methods_agree_on_pcr(self, sa_result):
        fast = compute_fti(sa_result.placement, method="placements")
        mer = compute_fti(sa_result.placement, method="mer")
        assert fast.covered == mer.covered
        assert fast.fti == mer.fti


class TestSegregationInteraction:
    def test_zero_segregation_module(self):
        bare = ModuleSpec("bare", ModuleKind.DETECTOR, 2, 2, 5.0, segregation=0)
        p = Placement(4, 4)
        p.add(pm("a", spec=bare, x=1, y=1))
        report = compute_fti(p, width=4, height=4)
        # 2x2 module on 4x4: relocation avoiding any faulty cell works.
        assert report.fti == 1.0
