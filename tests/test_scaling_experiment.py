"""Tests for the scaling-study experiment harness."""

import pytest

from repro.experiments.scaling import ScalingRow, run_scaling_study
from repro.placement.annealer import AnnealingParams

_TINY = AnnealingParams(
    initial_temp=200.0,
    cooling=0.7,
    iterations_per_module=15,
    freeze_rounds=2,
    window_gamma=0.4,
)


@pytest.fixture(scope="module")
def study():
    return run_scaling_study(leaf_counts=(2, 4), seed=7, params=_TINY)


class TestScalingStudy:
    def test_row_per_leaf_count(self, study):
        assert [r.leaves for r in study.rows] == [2, 4]

    def test_operation_counts(self, study):
        assert [r.operations for r in study.rows] == [3, 7]

    def test_area_covers_lower_bound(self, study):
        for row in study.rows:
            assert row.area_cells >= row.peak_demand_cells

    def test_overhead_nonnegative(self, study):
        for row in study.rows:
            assert row.area_overhead_pct >= 0.0

    def test_fti_bounds(self, study):
        for row in study.rows:
            assert 0.0 <= row.fti <= 1.0

    def test_table_renders_all_rows(self, study):
        text = study.table_text()
        for row in study.rows:
            assert str(row.area_cells) in text

    def test_zero_demand_edge_case(self):
        row = ScalingRow(
            leaves=2, operations=3, makespan_s=1.0, peak_demand_cells=0,
            area_cells=0, fti=1.0, placement_runtime_s=0.0,
        )
        assert row.area_overhead_pct == 0.0
