"""Determinism and scoping of :class:`repro.testing.chaos.ChaosPolicy`."""

from __future__ import annotations

import pickle

import pytest

from repro.testing.chaos import (
    CHAOS_MODES,
    ChaosPolicy,
    UnpicklableChaosError,
    _chaos_hash,
)


class TestConstruction:
    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosPolicy.seeded(["segfault"])
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosPolicy.explicit_plan({(0, 0): "meteor-strike"})

    def test_rate_outside_unit_interval_is_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            ChaosPolicy.seeded(["timeout"], rate=1.5)

    def test_none_policy_is_inactive(self):
        assert not ChaosPolicy.none().active
        assert ChaosPolicy.none().describe() == "none"

    def test_policies_pickle(self):
        # Policies ride into worker processes with every submission.
        policy = ChaosPolicy.seeded(["worker-kill"], seed=3, rate=0.5)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestSchedule:
    def test_explicit_plan_pins_exact_executions(self):
        policy = ChaosPolicy.explicit_plan({(2, 0): "worker-kill", (2, 1): "timeout"})
        assert policy.action(2, 0) == "worker-kill"
        assert policy.action(2, 1) == "timeout"
        assert policy.action(2, 2) is None
        assert policy.action(0, 0) is None
        assert policy.active

    def test_explicit_wins_over_seeded(self):
        policy = ChaosPolicy(
            modes=("worker-kill",), rate=1.0, explicit={(0, 0): "timeout"}
        )
        assert policy.action(0, 0) == "timeout"
        assert policy.action(1, 0) == "worker-kill"

    def test_seeded_injects_first_attempt_only(self):
        policy = ChaosPolicy.seeded(CHAOS_MODES, seed=5, rate=1.0)
        assert all(policy.action(i, 0) is not None for i in range(10))
        assert all(policy.action(i, 1) is None for i in range(10))

    def test_seeded_schedule_is_a_pure_function_of_seed(self):
        a = ChaosPolicy.seeded(["worker-kill", "timeout"], seed=9, rate=0.5)
        b = ChaosPolicy.seeded(["worker-kill", "timeout"], seed=9, rate=0.5)
        actions = [a.action(i, 0) for i in range(50)]
        assert actions == [b.action(i, 0) for i in range(50)]
        # ... and actually mixes hits and misses at rate 0.5.
        assert any(x is not None for x in actions)
        assert any(x is None for x in actions)

    def test_different_seeds_differ(self):
        a = ChaosPolicy.seeded(CHAOS_MODES, seed=1, rate=0.5)
        b = ChaosPolicy.seeded(CHAOS_MODES, seed=2, rate=0.5)
        assert [a.action(i, 0) for i in range(50)] != [
            b.action(i, 0) for i in range(50)
        ]

    def test_hash_draws_are_uniform_enough(self):
        draws = [_chaos_hash(0, i, "worker-kill") for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.3 < sum(d < 0.5 for d in draws) / 200 < 0.7


class TestEnv:
    def test_unset_env_means_no_policy(self):
        assert ChaosPolicy.from_env({}) is None
        assert ChaosPolicy.from_env({"REPRO_CHAOS": "  "}) is None

    def test_env_spec_parses_modes_and_knobs(self):
        policy = ChaosPolicy.from_env(
            {
                "REPRO_CHAOS": "worker-kill, timeout",
                "REPRO_CHAOS_SEED": "7",
                "REPRO_CHAOS_RATE": "0.1",
                "REPRO_CHAOS_SLEEP": "0.5",
            }
        )
        assert policy.modes == ("worker-kill", "timeout")
        assert policy.seed == 7
        assert policy.rate == 0.1
        assert policy.sleep_s == 0.5

    def test_env_with_bad_mode_raises(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosPolicy.from_env({"REPRO_CHAOS": "worker-kill,coffee-spill"})


class TestInjection:
    def test_parent_process_is_immune(self):
        # inject() in the parent must be a no-op even when the schedule
        # says "kill": chaos models worker faults, and the degraded
        # serial path relies on this to terminate.
        policy = ChaosPolicy.explicit_plan({(0, 0): "worker-kill"})
        policy.inject(0, 0)  # would os._exit(73) in a worker

    def test_unpicklable_error_refuses_to_pickle(self):
        exc = UnpicklableChaosError("boom")
        with pytest.raises(TypeError, match="refuses to pickle"):
            pickle.dumps(exc)

    def test_describe_summarizes_the_policy(self):
        assert "explicit" in ChaosPolicy.explicit_plan({(0, 0): "timeout"}).describe()
        assert "seeded" in ChaosPolicy.seeded(["timeout"], rate=0.2).describe()
