"""Checkpoint/resume round-trips and sweep determinism.

The core invariant of the online-recovery design: resumption is
deterministic replay, so checkpointing at *any* instant and resuming
with no new fault must reproduce the original simulation trace **bit
for bit** — same events (droplet ids included), same realized finishes,
same transport accounting. Property-tested over random checkpoint
instants; plus the Monte-Carlo sweep's jobs-invariance (records are
identical for any worker count, timing fields excepted).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.catalog import build_assay
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.recovery import MonteCarloRecoverySweep
from repro.sim.engine import BiochipSimulator
from repro.synthesis.flow import SynthesisFlow
from repro.util.errors import SimulationError


@pytest.fixture(scope="module", params=["pcr", "dilution"])
def synthesized(request):
    """One routed synthesis per assay, shared across the module."""
    graph, binding = build_assay(request.param)
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=7),
        route=True,
    )
    result = flow.run(graph, explicit_binding=binding)
    sim = BiochipSimulator(
        graph,
        result.schedule,
        result.binding,
        result.placement_result.placement,
        routing_plan=result.routing_plan,
        strict=False,
    )
    baseline = sim.run()
    assert baseline.completed
    return sim, baseline


@settings(max_examples=25, deadline=None)
@given(fraction=st.floats(min_value=0.0, max_value=1.1, allow_nan=False))
def test_checkpoint_resume_reproduces_trace_bit_identically(synthesized, fraction):
    """Checkpoint at any t, resume with no new fault -> original trace."""
    sim, baseline = synthesized
    t = fraction * baseline.nominal_makespan
    checkpoint = sim.checkpoint(t)
    resumed = sim.resume(checkpoint)
    assert resumed.events == baseline.events
    assert resumed.realized_finish == baseline.realized_finish
    assert resumed.total_transport_cells == baseline.total_transport_cells
    assert resumed.planned_transports == baseline.planned_transports
    # The checkpoint's event prefix is exactly the trace up to t.
    assert checkpoint.events_prefix == tuple(
        e for e in baseline.events if e.time <= t
    )


@settings(max_examples=15, deadline=None)
@given(fraction=st.floats(min_value=0.0, max_value=0.99, allow_nan=False))
def test_checkpoint_classification_partitions_the_schedule(synthesized, fraction):
    sim, baseline = synthesized
    t = fraction * baseline.nominal_makespan
    ck = sim.checkpoint(t)
    buckets = (*ck.completed, *ck.in_flight, *ck.pending)
    assert sorted(buckets) == sorted(ck.realized)  # disjoint and exhaustive
    for op in ck.completed:
        assert ck.realized[op][1] <= t
    for op in ck.in_flight:
        start, finish = ck.realized[op]
        assert start <= t < finish
    for op in ck.pending:
        assert ck.realized[op][0] > t


def test_run_is_reentrant(synthesized):
    """Two runs of the same simulator are bit-identical (reset state:
    array faults, reservoir rotation, droplet ids)."""
    sim, baseline = synthesized
    again = sim.run()
    assert again.events == baseline.events
    assert again.realized_finish == baseline.realized_finish


def test_resume_prefix_is_stable_under_new_faults(synthesized):
    """A new fault strictly after the checkpoint cannot rewrite the past."""
    sim, baseline = synthesized
    t = 0.6 * baseline.nominal_makespan
    ck = sim.checkpoint(t)
    # A boundary-lane cell: fault-tolerant enough to keep the run alive.
    resumed = sim.resume(ck, new_faults=[(t + 0.5, (1, 1))])
    assert tuple(e for e in resumed.events if e.time <= t) == ck.events_prefix


def test_checkpoint_rejects_future_faults_and_failed_runs(synthesized):
    sim, baseline = synthesized
    with pytest.raises(ValueError):
        sim.checkpoint(1.0, faults=[(5.0, (1, 1))])
    with pytest.raises(ValueError):
        sim.resume(sim.checkpoint(3.0), new_faults=[(1.0, (1, 1))])


def test_checkpoint_to_dict_is_json_safe(synthesized):
    import json

    sim, baseline = synthesized
    ck = sim.checkpoint(0.5 * baseline.nominal_makespan)
    payload = json.dumps(ck.to_dict())
    assert "completed" in payload


def test_checkpoint_of_failed_run_raises():
    graph, binding = build_assay("pcr")
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=7)
    )
    result = flow.run(graph, explicit_binding=binding)
    sim = BiochipSimulator(
        graph,
        result.schedule,
        result.binding,
        result.placement_result.placement,
        strict=False,
    )
    # Kill every module of the whole array at t=0: unrecoverable.
    w, h = result.placement_result.array_dims
    faults = [(0.0, (x + 2, y + 2)) for x in range(1, w + 1) for y in range(1, h + 1)]
    with pytest.raises(SimulationError):
        sim.checkpoint(10.0, faults=faults)


# -- corrupted / truncated checkpoints ----------------------------------------


class TestCheckpointValidation:
    """A mangled checkpoint must raise RecoveryError naming the
    inconsistency — never a bare KeyError/IndexError from deep inside
    the replay (checkpoints cross process and serialization
    boundaries)."""

    @pytest.fixture()
    def ck(self, synthesized):
        import dataclasses

        sim, baseline = synthesized
        checkpoint = sim.checkpoint(0.5 * baseline.nominal_makespan)
        return sim, checkpoint, dataclasses.replace

    def test_intact_checkpoint_validates_and_resumes(self, ck):
        sim, checkpoint, _ = ck
        checkpoint.validate(sim.schedule)
        assert sim.resume(checkpoint).completed

    def test_negative_time_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        with pytest.raises(RecoveryError, match="must be >= 0"):
            replace(checkpoint, time_s=-1.0).validate(sim.schedule)

    def test_duplicate_classification_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        dup = checkpoint.completed[0]
        mangled = replace(checkpoint, pending=(*checkpoint.pending, dup))
        with pytest.raises(RecoveryError, match="classified twice"):
            mangled.validate(sim.schedule)

    def test_missing_operation_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        mangled = replace(checkpoint, pending=checkpoint.pending[1:])
        with pytest.raises(RecoveryError, match="does not partition"):
            mangled.validate(sim.schedule)
        with pytest.raises(RecoveryError, match="corrupt checkpoint"):
            sim.resume(mangled)

    def test_unknown_operation_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        mangled = replace(
            checkpoint, pending=(*checkpoint.pending, "op-from-another-assay")
        )
        with pytest.raises(RecoveryError, match="does not partition"):
            mangled.validate(sim.schedule)

    def test_started_op_without_realized_interval_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        realized = dict(checkpoint.realized)
        realized.pop(checkpoint.completed[0])
        mangled = replace(checkpoint, realized=realized)
        with pytest.raises(RecoveryError, match="no realized interval"):
            mangled.validate(sim.schedule)

    def test_backwards_interval_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        op = checkpoint.completed[0]
        realized = dict(checkpoint.realized)
        start, finish = realized[op]
        realized[op] = (finish + 1.0, start)
        with pytest.raises(RecoveryError, match="backwards"):
            replace(checkpoint, realized=realized).validate(sim.schedule)

    def test_completed_op_finishing_in_the_future_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        op = checkpoint.completed[0]
        realized = dict(checkpoint.realized)
        start, _ = realized[op]
        realized[op] = (start, checkpoint.time_s + 100.0)
        with pytest.raises(RecoveryError, match="after the checkpoint instant"):
            replace(checkpoint, realized=realized).validate(sim.schedule)

    def test_fault_after_checkpoint_instant_rejected(self, ck):
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        mangled = replace(
            checkpoint,
            faults=(*checkpoint.faults, (checkpoint.time_s + 5.0, (1, 1))),
        )
        with pytest.raises(RecoveryError, match="faults after"):
            mangled.validate(sim.schedule)

    def test_stale_event_prefix_rejected(self, ck):
        import dataclasses as dc

        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        late = dc.replace(
            checkpoint.events_prefix[-1], time=checkpoint.time_s + 9.0
        )
        mangled = replace(
            checkpoint, events_prefix=(*checkpoint.events_prefix, late)
        )
        with pytest.raises(RecoveryError, match="stale or truncated"):
            mangled.validate(sim.schedule)

    def test_parked_droplet_from_unknown_op_rejected(self, ck):
        from repro.geometry import Point
        from repro.util.errors import RecoveryError

        sim, checkpoint, replace = ck
        positions = dict(checkpoint.droplet_positions)
        positions["phantom-op"] = Point(3, 3)
        mangled = replace(checkpoint, droplet_positions=positions)
        with pytest.raises(RecoveryError, match="parked droplets"):
            mangled.validate(sim.schedule)


# -- sweep determinism across --jobs ------------------------------------------

_TIMING_KEYS = ("replace_s", "reroute_s", "recovery_s")


def _stable(report_dict: dict) -> dict:
    """The deterministic portion of a sweep report (timings stripped)."""
    out = {k: v for k, v in report_dict.items() if k not in ("wall_s", "jobs")}
    out["mean_recovery_s"] = None
    out["scenarios"] = [
        {k: v for k, v in rec.items() if k not in _TIMING_KEYS}
        for rec in report_dict["scenarios"]
    ]
    return out


def test_sweep_results_identical_across_jobs():
    def run(jobs: int) -> dict:
        sweep = MonteCarloRecoverySweep(
            assays=("pcr", "dilution"),
            time_fractions=(0.5,),
            targets=("pending-module",),
            annealing=AnnealingParams.fast(),
            recovery_annealing=AnnealingParams.fast(),
            seed=11,
        )
        return sweep.run(jobs=jobs).to_dict()

    serial = _stable(run(1))
    parallel = _stable(run(2))
    assert serial == parallel


# -- sweep journaling, resume, and structured failures ------------------------


def small_sweep(assays=("pcr",)):
    return MonteCarloRecoverySweep(
        assays=assays,
        time_fractions=(0.5,),
        targets=("pending-module", "street"),
        annealing=AnnealingParams.fast(),
        recovery_annealing=AnnealingParams.fast(),
        seed=11,
    )


def test_sweep_journal_and_full_resume_bit_identical(tmp_path):
    from repro.exec import load_journal
    from repro.recovery.sweep import JOURNAL_KIND

    journal = tmp_path / "sweep.jsonl"
    original = small_sweep().run(jobs=1, journal_path=journal)
    assert set(load_journal(journal, kind=JOURNAL_KIND)) == {
        "pcr|0.5|pending-module", "pcr|0.5|street",
    }
    resumed = small_sweep().run(jobs=1, resume_from=journal)
    assert _stable(resumed.to_dict()) == _stable(original.to_dict())


def test_sweep_partial_resume_preserves_the_seed_stream(tmp_path):
    # Only the first scenario is journaled; the recomputed rest must
    # draw exactly the seeds an uninterrupted run would (skipped
    # scenarios still consume their pre-derived seeds positionally).
    journal = tmp_path / "sweep.jsonl"
    original = small_sweep().run(jobs=1, journal_path=journal)
    lines = journal.read_text().splitlines(keepends=True)
    partial = tmp_path / "partial.jsonl"
    partial.write_text(lines[0])
    resumed = small_sweep().run(jobs=1, resume_from=partial)
    assert _stable(resumed.to_dict()) == _stable(original.to_dict())


def test_sweep_crashed_block_yields_structured_failure_records():
    from repro.exec import STATUS_CRASHED
    from repro.testing.chaos import ChaosPolicy

    # The pcr block fails with a task-scoped unpicklable exception on
    # its only attempt; its scenarios must appear as keyed failure
    # records while the dilution block is unharmed.
    chaos = ChaosPolicy.explicit_plan({(0, 0): "unpicklable"})
    report = small_sweep(assays=("pcr", "dilution")).run(
        jobs=2, max_retries=0, chaos=chaos
    )
    assert len(report.records) == 4
    failed = [r for r in report.records if r.assay == "pcr"]
    assert len(failed) == 2
    for r in failed:
        assert r.status == STATUS_CRASHED
        assert not r.recovered
        assert r.reason
        assert r.key in ("pcr|0.5|pending-module", "pcr|0.5|street")
    assert all(r.status == "ok" for r in report.records if r.assay == "dilution")
    assert "FAILED" in report.table_text()
