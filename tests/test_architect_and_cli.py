"""Tests for the architectural explorer and the command-line interface."""

import pytest

from repro.assay.protocols.pcr import build_pcr_mixing_graph
from repro.cli import build_parser, main
from repro.placement.annealer import AnnealingParams
from repro.synthesis.architect import ArchitecturalExplorer, DesignPoint


@pytest.fixture(scope="module")
def exploration():
    explorer = ArchitecturalExplorer(params=AnnealingParams.fast(), seed=7)
    return explorer.explore(
        build_pcr_mixing_graph(), concurrency_caps=(2, 3)
    )


class TestDesignPoint:
    def make(self, makespan, area, fti):
        return DesignPoint(
            strategy="fastest", max_concurrent_ops=3, makespan_s=makespan,
            area_cells=area, area_mm2=area * 2.25, fti=fti, runtime_s=0.1,
        )

    def test_dominates(self):
        better = self.make(19, 63, 0.5)
        worse = self.make(25, 70, 0.3)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = self.make(19, 63, 0.5)
        b = self.make(19, 63, 0.5)
        assert not a.dominates(b)

    def test_tradeoff_points_incomparable(self):
        fast_big = self.make(19, 90, 0.4)
        slow_small = self.make(30, 60, 0.4)
        assert not fast_big.dominates(slow_small)
        assert not slow_small.dominates(fast_big)


class TestExplorer:
    def test_point_count(self, exploration):
        # 2 strategies x 2 caps.
        assert len(exploration.points) == 4

    def test_pareto_front_nonempty_and_subset(self, exploration):
        front = exploration.pareto_front
        assert front
        assert set(front) <= set(exploration.points)

    def test_front_is_mutually_nondominated(self, exploration):
        front = exploration.pareto_front
        for a in front:
            for b in front:
                assert not a.dominates(b) or a == b

    def test_lower_cap_never_shortens_makespan(self, exploration):
        by_key = {
            (p.strategy, p.max_concurrent_ops): p for p in exploration.points
        }
        for strategy in ("fastest", "smallest"):
            assert (
                by_key[(strategy, 2)].makespan_s
                >= by_key[(strategy, 3)].makespan_s
            )

    def test_table_renders(self, exploration):
        text = exploration.table_text()
        assert "pareto" in text
        assert "fastest" in text and "smallest" in text


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        # Not an argparse choices= rejection: --protocol accepts open
        # gen: specs, so the catalog validates and main maps it to 2.
        with pytest.raises(SystemExit) as exc:
            main(["flow", "--protocol", "warp"])
        assert exc.value.code == 2

    def test_flow_command_runs(self, capsys):
        rc = main(["flow", "--protocol", "pcr", "--seed", "2", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "assay: pcr-mixing-stage" in out
        assert "FTI" in out

    def test_flow_with_beta_uses_two_stage(self, capsys):
        rc = main(["flow", "--protocol", "dilution", "--beta", "20",
                   "--seed", "3", "--fast"])
        assert rc == 0
        assert "fault tolerance" in capsys.readouterr().out

    def test_explore_command_runs(self, capsys):
        rc = main(["explore", "--protocol", "pcr", "--seed", "5", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pareto front" in out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_no_fast_selects_larger_preset(self):
        args = build_parser().parse_args(["flow", "--no-fast"])
        assert args.fast is False
        args = build_parser().parse_args(["flow"])
        assert args.fast is True

    def test_route_command_prints_verified_plan(self, capsys):
        rc = main(["route", "--protocol", "pcr", "--seed", "2", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verification: conflict-free" in out
        assert "routability" in out
        assert "latency" in out

    def test_route_command_avoids_declared_fault(self, capsys):
        rc = main(
            ["route", "--protocol", "pcr", "--seed", "2", "--faulty", "4", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verification: conflict-free" in out


class TestPortfolioCommand:
    def test_portfolio_runs_and_reports_winner(self, capsys):
        rc = main(["portfolio", "--protocol", "pcr", "-n", "2",
                   "--seed", "7", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "winner: instance" in out
        assert "assay: pcr-mixing-stage" in out

    def test_portfolio_json_output(self, capsys):
        import json

        rc = main(["portfolio", "--protocol", "pcr", "-n", "2",
                   "--seed", "7", "--fast", "--json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["objective"] == "area"
        assert len(d["instances"]) == 2
        assert d["instances"][d["winner_index"]]["result"]["area_cells"] > 0

    def test_portfolio_objective_flag(self, capsys):
        rc = main(["portfolio", "--protocol", "pcr", "-n", "2", "--seed", "7",
                   "--objective", "fti", "--fast"])
        assert rc == 0
        assert "fti" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_grid_runs(self, capsys):
        rc = main(["batch", "--protocols", "pcr,dilution",
                   "--faults", "none,center", "--seed", "7", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pcr" in out and "dilution" in out
        assert "scenarios ok" in out

    def test_batch_json_round_trips(self, capsys):
        import json

        rc = main(["batch", "--protocols", "pcr", "--faults", "none,corner",
                   "--seed", "7", "--fast", "--json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["scenario_count"] == 2
        assert d["ok_count"] == 2
        assert json.loads(json.dumps(d)) == d

    def test_batch_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["batch", "--protocols", "warp", "--fast"])

    def test_batch_rejects_unknown_fault_pattern(self):
        with pytest.raises(SystemExit):
            main(["batch", "--protocols", "pcr", "--faults", "meteor", "--fast"])

    def test_batch_rejects_vacuous_fault_sweep_cleanly(self):
        # --no-route without --verify leaves no stage that consumes the
        # faults; must exit with a message, not a traceback or a false ok.
        with pytest.raises(SystemExit, match="fault-consuming"):
            main(["batch", "--protocols", "pcr", "--faults", "none,center",
                  "--no-route", "--fast"])

    def test_batch_rejects_empty_protocol_list_cleanly(self):
        with pytest.raises(SystemExit, match="at least one assay"):
            main(["batch", "--protocols", ",", "--fast"])

    def test_portfolio_unproducible_objective_exits_cleanly(self):
        with pytest.raises(SystemExit, match="route=True"):
            main(["portfolio", "--protocol", "pcr", "-n", "2", "--seed", "7",
                  "--objective", "route-steps", "--fast"])
