"""Tests for maximal-empty-rectangle enumeration.

The staircase algorithm is property-tested against the quartic
brute-force reference on random occupancy grids — the key correctness
guarantee behind the paper's FTI procedure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault.mer import (
    brute_force_maximal_empty_rectangles,
    find_maximal_empty_rectangles,
    fits_any_rectangle,
)
from repro.geometry import Rect
from repro.grid.occupancy import OccupancyGrid


def grid_from_strings(rows: list[str]) -> OccupancyGrid:
    """Build a grid from art: '#' occupied, '.' free; first row = top."""
    height = len(rows)
    width = len(rows[0])
    g = OccupancyGrid(width, height)
    for i, row in enumerate(rows):
        y = height - i
        for x, ch in enumerate(row, start=1):
            if ch == "#":
                g.set((x, y))
    return g


class TestKnownConfigurations:
    def test_empty_grid_single_mer(self):
        g = OccupancyGrid(5, 4)
        assert find_maximal_empty_rectangles(g) == [Rect(1, 1, 5, 4)]

    def test_full_grid_no_mers(self):
        g = OccupancyGrid(3, 3)
        g.fill(Rect(1, 1, 3, 3))
        assert find_maximal_empty_rectangles(g) == []

    def test_single_obstacle_center(self):
        g = grid_from_strings([
            "...",
            ".#.",
            "...",
        ])
        mers = set(find_maximal_empty_rectangles(g))
        assert mers == {
            Rect(1, 1, 3, 1),   # bottom band
            Rect(1, 3, 3, 1),   # top band
            Rect(1, 1, 1, 3),   # left band
            Rect(3, 1, 1, 3),   # right band
        }

    def test_l_shaped_free_space(self):
        g = grid_from_strings([
            "##.",
            "##.",
            "...",
        ])
        mers = set(find_maximal_empty_rectangles(g))
        assert mers == {Rect(1, 1, 3, 1), Rect(3, 1, 1, 3)}

    def test_one_row_grid(self):
        g = grid_from_strings(["..#."])
        mers = set(find_maximal_empty_rectangles(g))
        assert mers == {Rect(1, 1, 2, 1), Rect(4, 1, 1, 1)}

    def test_one_column_grid(self):
        g = grid_from_strings([".", "#", "."])
        mers = set(find_maximal_empty_rectangles(g))
        assert mers == {Rect(1, 1, 1, 1), Rect(1, 3, 1, 1)}

    def test_diagonal_obstacles(self):
        g = grid_from_strings([
            "#..",
            ".#.",
            "..#",
        ])
        mers = set(find_maximal_empty_rectangles(g))
        brute = set(brute_force_maximal_empty_rectangles(g))
        assert mers == brute
        assert Rect(2, 3, 2, 1) in mers

    def test_accepts_raw_matrix(self):
        m = np.zeros((2, 3), dtype=np.uint8)
        assert find_maximal_empty_rectangles(m) == [Rect(1, 1, 3, 2)]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            find_maximal_empty_rectangles(np.zeros(4))


class TestMERInvariants:
    @staticmethod
    def assert_valid_mers(grid: OccupancyGrid, mers: list[Rect]):
        # 1. every MER is empty
        for r in mers:
            assert grid.is_rect_free(r), f"{r} is not empty"
        # 2. maximality: no MER extends in any direction
        for r in mers:
            for grown in (
                Rect(r.x - 1, r.y, r.width + 1, r.height) if r.x > 1 else None,
                Rect(r.x, r.y - 1, r.width, r.height + 1) if r.y > 1 else None,
                Rect(r.x, r.y, r.width + 1, r.height),
                Rect(r.x, r.y, r.width, r.height + 1),
            ):
                if grown is not None:
                    assert not grid.is_rect_free(grown), f"{r} extends to {grown}"
        # 3. no duplicates
        assert len(mers) == len(set(mers))

    @given(
        st.integers(1, 7),
        st.integers(1, 7),
        st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=12),
    )
    @settings(max_examples=120, deadline=None)
    def test_fast_matches_bruteforce(self, width, height, obstacles):
        g = OccupancyGrid(width, height)
        for x, y in obstacles:
            if x < width and y < height:
                g.set((x + 1, y + 1))
        fast = set(find_maximal_empty_rectangles(g))
        brute = set(brute_force_maximal_empty_rectangles(g))
        assert fast == brute
        self.assert_valid_mers(g, list(fast))

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_every_free_cell_in_some_mer(self, width, height):
        g = OccupancyGrid(width, height)
        g.set((1, 1))
        mers = find_maximal_empty_rectangles(g)
        free = set(g.free_cells())
        covered = set()
        for r in mers:
            covered.update(r.cells())
        assert covered == free


class TestFitsAnyRectangle:
    def test_fits_either_orientation(self):
        rects = [Rect(1, 1, 3, 6)]
        assert fits_any_rectangle(rects, 6, 3, allow_rotation=True)
        assert not fits_any_rectangle(rects, 6, 3, allow_rotation=False)

    def test_empty_list(self):
        assert not fits_any_rectangle([], 1, 1)

    def test_exact_fit(self):
        assert fits_any_rectangle([Rect(2, 2, 4, 4)], 4, 4)
