"""Unit and integration tests for the online fault-recovery engine."""

from __future__ import annotations

import pytest

from repro.assay.catalog import build_assay
from repro.geometry import Point
from repro.pipeline import Pipeline, RecoveryStage, SynthesisContext
from repro.pipeline.pipeline import build_default_pipeline
from repro.placement.annealer import AnnealingParams
from repro.placement.incremental import IncrementalCostEvaluator
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.recovery import OnlineRecoveryEngine
from repro.recovery.engine import FaultAvoidanceCost, pick_fault_cell
from repro.synthesis.flow import SynthesisFlow
from repro.util.errors import RecoveryError


@pytest.fixture(scope="module")
def routed_pcr():
    graph, binding = build_assay("pcr")
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=7),
        route=True,
    )
    return flow.run(graph, explicit_binding=binding)


@pytest.fixture(scope="module")
def engine():
    return OnlineRecoveryEngine(annealing=AnnealingParams.fast())


def _mid_fault(engine, result, fraction=0.5, target="pending-module", seed=3):
    t = fraction * result.schedule.makespan
    ck = engine.checkpoint_of(result, t)
    cell = pick_fault_cell(result, ck, target, rng=seed)
    return t, ck, cell


def test_recover_midassay_fault_end_to_end(routed_pcr, engine):
    t, ck, cell = _mid_fault(engine, routed_pcr)
    outcome = engine.recover(routed_pcr, [cell], t, seed=3, checkpoint=ck)
    assert outcome.recovered, outcome.reason
    assert outcome.plan_verified
    assert outcome.sim_report is not None and outcome.sim_report.completed
    # The merged plan routes everything and passes the verifier.
    assert outcome.routing_plan.routability == 1.0
    outcome.routing_plan.verify()
    # Makespan can only stay or grow; re-synthesis latencies were timed.
    assert outcome.recovered_makespan_s >= outcome.nominal_makespan_s
    assert outcome.recovery_s >= outcome.replace_s + outcome.reroute_s - 1e-9


def test_frozen_modules_never_move(routed_pcr, engine):
    t, ck, cell = _mid_fault(engine, routed_pcr)
    outcome = engine.recover(routed_pcr, [cell], t, seed=3, checkpoint=ck)
    nominal = routed_pcr.placement_result.placement
    frozen = set(ck.completed) | set(ck.in_flight)
    for op in frozen:
        if op not in nominal:
            continue
        old, new = nominal.get(op), outcome.placement.get(op)
        assert (old.x, old.y, old.rotated) == (new.x, new.y, new.rotated)
    # Movable modules never sit on the dead cell.
    for op in outcome.movable_ops:
        assert not outcome.placement.get(op).footprint.contains_point(Point(*cell))


def test_prefix_epochs_reused_verbatim(routed_pcr, engine):
    t, ck, cell = _mid_fault(engine, routed_pcr)
    outcome = engine.recover(routed_pcr, [cell], t, seed=3, checkpoint=ck)
    nominal_prefix = [
        e for e in routed_pcr.routing_plan.epochs if e.time_s < t
    ]
    assert list(outcome.routing_plan.epochs[: len(nominal_prefix)]) == nominal_prefix
    assert outcome.reused_epochs == len(nominal_prefix)
    # Suffix epochs all release at or after the fault (an epoch at the
    # exact fault instant already faces the dead cell, so it is
    # re-routed, never reused) and know the updated fault mask.
    for epoch in outcome.routing_plan.epochs[len(nominal_prefix):]:
        assert epoch.time_s >= t
        assert epoch.faulty  # the updated fault mask reached the grid


def test_unrecoverable_fault_yields_explicit_infeasibility(routed_pcr, engine):
    """Killing every core cell leaves no site for any pending module:
    the engine must report infeasibility, not raise or half-answer."""
    t = 0.5 * routed_pcr.schedule.makespan
    w, h = routed_pcr.placement_result.array_dims
    everything = [
        (x, y)
        for x in range(1, w + engine.core_slack + 1)
        for y in range(1, h + engine.core_slack + 1)
    ]
    outcome = engine.recover(routed_pcr, everything, t, seed=3)
    assert not outcome.recovered
    assert "no fault-free placement" in outcome.reason


def test_recover_requires_a_fault_cell(routed_pcr, engine):
    with pytest.raises(RecoveryError):
        engine.recover(routed_pcr, [], 1.0)
    with pytest.raises(RecoveryError):
        engine.checkpoint_of(routed_pcr, -1.0)


def test_pick_fault_cell_kinds_and_determinism(routed_pcr, engine):
    t = 0.5 * routed_pcr.schedule.makespan
    ck = engine.checkpoint_of(routed_pcr, t)
    placement = routed_pcr.placement_result.placement
    for target in ("pending-module", "in-flight-module", "center", "street"):
        a = pick_fault_cell(routed_pcr, ck, target, rng=5)
        b = pick_fault_cell(routed_pcr, ck, target, rng=5)
        assert a == b  # seeded draws are reproducible
        w, h = placement.array_dims()
        assert 1 <= a.x <= w and 1 <= a.y <= h
    with pytest.raises(RecoveryError):
        pick_fault_cell(routed_pcr, ck, "no-such-kind")
    # street cells are never under a module footprint.
    street = pick_fault_cell(routed_pcr, ck, "street", rng=5)
    assert not any(pm.footprint.contains_point(street) for pm in placement)


def test_fault_avoidance_cost_incremental_parity(routed_pcr):
    """The warm-restart cost's delta must match its full recompute for
    arbitrary moves (the contract the incremental anneal relies on)."""
    from repro.placement.moves import MoveGenerator

    placement = routed_pcr.placement_result.placement.copy()
    anchors = {pm.op_id: (pm.x, pm.y) for pm in placement}
    cost = FaultAvoidanceCost([(2, 2), (5, 5)], anchors=anchors)
    assert cost.supports_incremental()
    evaluator = IncrementalCostEvaluator(placement)
    window = AnnealingParams.fast().make_window(max_span=8)
    mover = MoveGenerator(window=window, seed=13)
    for _ in range(60):
        move = mover.propose_move(evaluator.placement, 100.0)
        before = cost(evaluator.placement)
        delta = cost.delta(evaluator, move)
        evaluator.apply(move)
        after = cost(evaluator.placement)
        assert abs((after - before) - delta) < 1e-6


def test_movable_filter_restricts_moves(routed_pcr):
    from repro.placement.moves import MoveGenerator

    placement = routed_pcr.placement_result.placement
    ops = sorted(placement.op_ids())
    movable = frozenset(ops[:2])
    window = AnnealingParams.fast().make_window(max_span=8)
    mover = MoveGenerator(window=window, movable=movable, seed=3)
    for _ in range(50):
        move = mover.propose_move(placement, 50.0)
        assert {u.op_id for u in move.updates} <= movable


def test_recovery_stage_in_pipeline():
    graph, binding = build_assay("dilution")
    base = build_default_pipeline(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=7),
        route=True,
    )
    stage = RecoveryStage(
        fault_time_fraction=0.5,
        engine=OnlineRecoveryEngine(annealing=AnnealingParams.fast()),
        seed=11,
    )
    pipeline = Pipeline([*base.stages, stage])
    context = SynthesisContext(graph=graph, explicit_binding=binding)
    pipeline.run(context)
    assert context.recovery_outcome is not None
    assert context.recovery_outcome.recovered, context.recovery_outcome.reason
    assert "recover" in context.stage_timings


def test_outcome_to_dict_is_json_safe(routed_pcr, engine):
    import json

    t, ck, cell = _mid_fault(engine, routed_pcr)
    outcome = engine.recover(routed_pcr, [cell], t, seed=3, checkpoint=ck)
    payload = json.loads(json.dumps(outcome.to_dict()))
    assert payload["recovered"] is True
    assert payload["checkpoint"]["pending"]
