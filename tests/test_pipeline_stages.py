"""Tests for the staged pipeline: stages, context, facade equivalence."""

import pickle

import pytest

from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.pipeline import (
    BindStage,
    Pipeline,
    PlaceStage,
    RouteStage,
    ScheduleStage,
    SimVerifyStage,
    Stage,
    SynthesisContext,
    build_default_pipeline,
)
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.synthesis.flow import SynthesisFlow
from repro.util.errors import PipelineError
from repro.util.rng import ensure_rng, spawn_rng


def fast_placer(seed):
    return SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=seed)


def placement_map(result):
    return {pm.op_id: (pm.x, pm.y) for pm in result.placement_result.placement}


class TestPipelineAssembly:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineError, match="at least one stage"):
            Pipeline([])

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            Pipeline([BindStage(), BindStage()])

    def test_stage_lookup(self):
        p = Pipeline([BindStage(), ScheduleStage()])
        assert p.stage("bind").name == "bind"
        with pytest.raises(PipelineError, match="no stage named"):
            p.stage("place")

    def test_default_pipeline_stage_order(self):
        p = build_default_pipeline(route=True, verify=True, seed=1)
        assert p.stage_names == ("bind", "schedule", "place", "route", "verify")

    def test_builtin_stages_satisfy_protocol(self):
        for stage in build_default_pipeline(route=True, verify=True, seed=1).stages:
            assert isinstance(stage, Stage)

    def test_split_on_faults(self):
        p = build_default_pipeline(route=True, seed=1)
        prefix, suffix = p.split_on_faults()
        assert prefix.stage_names == ("bind", "schedule", "place")
        assert suffix is not None and suffix.stage_names == ("route",)

    def test_split_without_fault_stages(self):
        prefix, suffix = build_default_pipeline(seed=1).split_on_faults()
        assert prefix.stage_names == ("bind", "schedule", "place")
        assert suffix is None

    def test_split_rejects_fault_dependent_head(self):
        with pytest.raises(PipelineError, match="fault-dependent stage"):
            Pipeline([RouteStage()]).split_on_faults()


class TestStagePrerequisites:
    def test_schedule_requires_binding(self):
        ctx = SynthesisContext(graph=build_pcr_mixing_graph())
        with pytest.raises(PipelineError, match="binding"):
            ScheduleStage().run(ctx)

    def test_place_requires_schedule(self):
        ctx = SynthesisContext(graph=build_pcr_mixing_graph())
        BindStage().run(ctx)
        with pytest.raises(PipelineError, match="schedule"):
            PlaceStage(fast_placer(1)).run(ctx)

    def test_route_requires_placement(self):
        ctx = SynthesisContext(graph=build_pcr_mixing_graph())
        with pytest.raises(PipelineError):
            RouteStage().run(ctx)

    def test_result_requires_mandatory_stages(self):
        ctx = SynthesisContext(graph=build_pcr_mixing_graph())
        with pytest.raises(PipelineError, match="missing"):
            ctx.result()


class TestFacadeEquivalence:
    """SynthesisFlow must be a faithful facade over the pipeline."""

    def test_facade_and_pipeline_identical_for_fixed_seed(self):
        graph = build_pcr_mixing_graph()
        flow = SynthesisFlow(placer=fast_placer(2), max_concurrent_ops=3)
        facade = flow.run(graph, explicit_binding=PCR_BINDING)

        pipeline = build_default_pipeline(placer=fast_placer(2), max_concurrent_ops=3)
        ctx = pipeline.run(
            SynthesisContext(graph=graph, explicit_binding=PCR_BINDING)
        )
        direct = ctx.result()

        assert placement_map(facade) == placement_map(direct)
        assert facade.area_cells == direct.area_cells
        assert facade.makespan == direct.makespan
        assert facade.fti == direct.fti

    def test_facade_exposes_its_pipeline(self):
        flow = SynthesisFlow(placer=fast_placer(1), route=True)
        assert flow.pipeline.stage_names == ("bind", "schedule", "place", "route")
        # The pipeline's stages are the facade's own components.
        assert flow.pipeline.stage("place").placer is flow.placer
        assert flow.pipeline.stage("bind").binder is flow.binder

    def test_default_placer_seeding_matches_legacy_derivation(self):
        # The facade's default placer draws one spawn from the flow rng —
        # the exact derivation the pre-pipeline flow used.
        flow = SynthesisFlow(seed=3)
        expected = spawn_rng(ensure_rng(3)).random()
        assert flow.placer._rng.random() == expected

    def test_stage_timings_recorded(self):
        result = SynthesisFlow(placer=fast_placer(1), route=True).run(
            build_pcr_mixing_graph(), explicit_binding=PCR_BINDING
        )
        assert list(result.stage_timings) == ["bind", "schedule", "place", "route"]
        assert all(t >= 0 for t in result.stage_timings.values())
        assert result.runtime_s == pytest.approx(sum(result.stage_timings.values()))


class TestContext:
    def test_context_picklable_at_every_stage(self):
        ctx = SynthesisContext(
            graph=build_pcr_mixing_graph(), explicit_binding=PCR_BINDING
        )
        for stage in build_default_pipeline(
            placer=fast_placer(1), route=True
        ).stages:
            stage.run(ctx)
            clone = pickle.loads(pickle.dumps(ctx))
            assert clone.graph.name == ctx.graph.name
        assert clone.routing_plan is not None
        assert clone.result().area_cells == ctx.result().area_cells

    def test_fork_shares_products_and_copies_timings(self):
        ctx = SynthesisContext(graph=build_pcr_mixing_graph())
        prefix, _ = build_default_pipeline(
            placer=fast_placer(1), route=True
        ).split_on_faults()
        prefix.run(ctx)
        fork = ctx.fork(faulty_cells=((1, 1),))
        assert fork.placement_result is ctx.placement_result
        assert fork.binding is ctx.binding
        assert fork.stage_timings == ctx.stage_timings
        fork.stage_timings["route"] = 0.1
        assert "route" not in ctx.stage_timings

    def test_custom_stage_slots_in(self):
        class PeakDemandStage:
            """A user analysis stage: annotate peak cell demand."""

            name = "peak-demand"
            uses_faults = False

            def __init__(self):
                self.peak = None

            def run(self, context):
                context.require("binding", "schedule")
                footprints = {
                    op: spec.footprint_area for op, spec in context.binding.items()
                }
                self.peak = context.schedule.peak_cell_demand(footprints)

        custom = PeakDemandStage()
        assert isinstance(custom, Stage)
        pipeline = Pipeline(
            [BindStage(), ScheduleStage(), custom, PlaceStage(fast_placer(1))]
        )
        ctx = pipeline.run(
            SynthesisContext(
                graph=build_pcr_mixing_graph(), explicit_binding=PCR_BINDING
            )
        )
        assert custom.peak is not None and custom.peak > 0
        assert "peak-demand" in ctx.stage_timings


class TestSimVerifyStage:
    def test_verify_stage_replays_the_routed_assay(self):
        pipeline = build_default_pipeline(
            placer=fast_placer(2), route=True, verify=True
        )
        ctx = pipeline.run(
            SynthesisContext(
                graph=build_pcr_mixing_graph(), explicit_binding=PCR_BINDING
            )
        )
        assert ctx.sim_report is not None
        assert ctx.sim_report.completed
        result = ctx.result()
        assert result.sim_report is ctx.sim_report
        assert "simulation: completed" in result.summary()
        assert isinstance(SimVerifyStage(), Stage)

    def test_verify_stage_injects_the_context_faults(self):
        # The scenario's faulty cells must actually be exercised by the
        # replay (fault event + recovery), not merely threaded through.
        pipeline = build_default_pipeline(
            placer=fast_placer(2), route=True, verify=True
        )
        ctx = pipeline.run(
            SynthesisContext(
                graph=build_pcr_mixing_graph(),
                explicit_binding=PCR_BINDING,
                faulty_cells=((4, 5),),
            )
        )
        assert len(ctx.sim_report.events_of_kind("fault")) == 1

        baseline = build_default_pipeline(
            placer=fast_placer(2), route=True, verify=True
        ).run(
            SynthesisContext(
                graph=build_pcr_mixing_graph(), explicit_binding=PCR_BINDING
            )
        )
        assert baseline.sim_report.events_of_kind("fault") == []

    def test_context_canonicalizes_faulty_cell_tuples(self):
        from repro.geometry import Point

        ctx = SynthesisContext(
            graph=build_pcr_mixing_graph(), faulty_cells=[(2, 3)]
        )
        assert ctx.faulty_cells == (Point(2, 3),)
        assert ctx.fork(faulty_cells=[(1, 1)]).faulty_cells == (Point(1, 1),)
