"""Tests for the extended tolerance analysis (multi-fault, criticality)."""

import pytest

from repro.fault.fti import compute_fti
from repro.fault.tolerance import ToleranceAnalyzer
from repro.modules.library import MIXER_2X2, STORAGE_1X1
from repro.placement.model import PlacedModule, Placement


def pm(op, spec=MIXER_2X2, x=1, y=1, start=0.0, stop=10.0):
    return PlacedModule(op_id=op, spec=spec, x=x, y=y, start=start, stop=stop)


@pytest.fixture(scope="module")
def analyzer():
    return ToleranceAnalyzer()


class TestCriticality:
    def test_stuck_counts_sum_to_module_uncovered(self, analyzer, sa_result):
        crits = analyzer.criticality(sa_result.placement)
        report = compute_fti(sa_result.placement)
        for crit in crits:
            assert crit.stuck_cells == len(report.per_module[crit.op_id].stuck_cells)

    def test_sorted_most_critical_first(self, analyzer, sa_result):
        crits = analyzer.criticality(sa_result.placement)
        stuck = [c.stuck_cells for c in crits]
        assert stuck == sorted(stuck, reverse=True)

    def test_stuck_fraction_bounds(self, analyzer, sa_result):
        for crit in analyzer.criticality(sa_result.placement):
            assert 0.0 <= crit.stuck_fraction <= 1.0

    def test_fully_relocatable_module_zero_criticality(self, analyzer):
        # On the full 8x8 manufactured array the 4x4 mixer can always
        # relocate; on its own 4x4 bounding array it never can.
        p = Placement(8, 8)
        p.add(pm("a"))
        on_chip = analyzer.criticality(p, width=8, height=8)
        assert on_chip[0].stuck_cells == 0
        on_bbox = analyzer.criticality(p)
        assert on_bbox[0].stuck_cells == 16


class TestSpareStatistics:
    def test_interval_accounting(self, analyzer):
        p = Placement(8, 4)
        p.add(pm("a", x=1, y=1, start=0, stop=10))   # 16 used of 32
        p.add(pm("b", x=5, y=1, start=10, stop=20))
        stats = analyzer.spare_statistics(p)
        assert len(stats.intervals) == 2
        for _, free, total in stats.intervals:
            assert total == 32
            assert free == 16

    def test_min_free_is_bottleneck(self, analyzer, sa_result):
        stats = analyzer.spare_statistics(sa_result.placement)
        assert stats.min_free_cells == min(f for _, f, _ in stats.intervals)

    def test_mean_utilization_bounds(self, analyzer, sa_result):
        stats = analyzer.spare_statistics(sa_result.placement)
        assert 0.0 < stats.mean_utilization <= 1.0


class TestMultiFault:
    def test_zero_tolerance_placement(self, analyzer):
        # A module filling its array can never survive fault #1.
        p = Placement(4, 4)
        p.add(pm("a"))
        result = analyzer.multi_fault_survival(p, trials=20, seed=3)
        assert result.mean_faults_to_failure == 0.0
        assert result.survival_probability(1) == 0.0

    def test_storage_on_big_array_survives_many(self, analyzer):
        p = Placement(8, 8)
        p.add(pm("a", spec=STORAGE_1X1))
        result = analyzer.multi_fault_survival(
            p, trials=10, max_faults=5, seed=3, width=8, height=8
        )
        # A 3x3 store on an 8x8 array dodges several faults easily.
        assert result.mean_faults_to_failure >= 2.0

    def test_survival_probability_monotone_in_k(self, analyzer, sa_result):
        result = analyzer.multi_fault_survival(
            sa_result.placement, trials=30, max_faults=6, seed=9
        )
        probs = [result.survival_probability(k) for k in range(1, 6)]
        assert probs == sorted(probs, reverse=True)

    def test_first_fault_survival_tracks_fti(self, analyzer, sa_result):
        """P(survive >= 1 sequential fault) must estimate the FTI."""
        fti = compute_fti(sa_result.placement).fti
        result = analyzer.multi_fault_survival(
            sa_result.placement, trials=150, max_faults=1, seed=5
        )
        assert result.survival_probability(1) == pytest.approx(fti, abs=0.12)

    def test_histogram_totals_trials(self, analyzer, sa_result):
        result = analyzer.multi_fault_survival(
            sa_result.placement, trials=25, max_faults=4, seed=1
        )
        assert sum(result.histogram().values()) == 25

    def test_trials_validated(self, analyzer, sa_result):
        with pytest.raises(ValueError):
            analyzer.multi_fault_survival(sa_result.placement, trials=0)
