"""Tests for the transport-aware placement cost extension."""

import pytest

from repro.assay.protocols.pcr import build_pcr_mixing_graph
from repro.modules.library import MIXER_2X2
from repro.placement.annealer import AnnealingParams
from repro.placement.cost import AreaCost
from repro.placement.model import PlacedModule, Placement
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.placement.transport import TransportAwareCost


def pm(op, x=1, y=1, start=0.0, stop=10.0):
    return PlacedModule(op_id=op, spec=MIXER_2X2, x=x, y=y, start=start, stop=stop)


@pytest.fixture()
def graph():
    return build_pcr_mixing_graph()


class TestTransportDistance:
    def test_zero_when_producer_consumer_colocated(self, graph):
        cost = TransportAwareCost(graph)
        p = Placement(12, 12)
        p.add(pm("M1", x=1, y=1, start=0, stop=10))
        p.add(pm("M5", x=1, y=1, start=10, stop=15))  # reuses M1's cells
        assert cost.transport_distance(p) == 0

    def test_distance_counts_each_edge(self, graph):
        cost = TransportAwareCost(graph)
        p = Placement(20, 20)
        p.add(pm("M1", x=1, y=1, start=0, stop=10))
        p.add(pm("M2", x=1, y=1, start=10, stop=15))
        p.add(pm("M5", x=9, y=1, start=15, stop=20))
        # M1->M5 and M2->M5 each span 8 columns center-to-center.
        assert cost.transport_distance(p) == 16

    def test_unplaced_endpoints_ignored(self, graph):
        cost = TransportAwareCost(graph)
        p = Placement(12, 12)
        p.add(pm("M1"))
        assert cost.transport_distance(p) == 0

    def test_negative_weight_rejected(self, graph):
        with pytest.raises(ValueError):
            TransportAwareCost(graph, transport_weight=-1.0)


class TestCostComposition:
    def test_reduces_to_area_cost_at_zero_weight(self, graph):
        p = Placement(20, 20)
        p.add(pm("M1", x=1, y=1, start=0, stop=10))
        p.add(pm("M5", x=9, y=9, start=10, stop=15))
        base = AreaCost()
        transport_free = TransportAwareCost(graph, transport_weight=0.0)
        assert transport_free(p) == pytest.approx(base(p))

    def test_long_hauls_cost_more(self, graph):
        cost = TransportAwareCost(graph, transport_weight=1.0)
        near = Placement(20, 20)
        near.add(pm("M1", x=1, y=1, start=0, stop=10))
        near.add(pm("M5", x=1, y=5, start=10, stop=15))
        far = Placement(20, 20)
        far.add(pm("M1", x=1, y=1, start=0, stop=10))
        far.add(pm("M5", x=1, y=17, start=10, stop=15))
        # Equalize the area term by anchoring both bounding boxes.
        anchor_near = pm("M7", x=17, y=17, start=16, stop=19)
        anchor_far = pm("M7", x=17, y=17, start=16, stop=19)
        near.add(anchor_near)
        far.add(anchor_far)
        assert near.area_cells == far.area_cells
        assert cost(near) < cost(far)


class TestTransportAwarePlacement:
    def test_placer_accepts_transport_cost(self, graph, pcr):
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(),
            cost=TransportAwareCost(graph),
            seed=31,
        )
        result = placer.place(pcr.schedule, pcr.binding)
        result.placement.validate()

    def test_transport_weight_reduces_haul(self, graph, pcr):
        """Weighted placement should induce no *more* transport than the
        area-only one (usually strictly less)."""
        area_only = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), seed=31
        ).place(pcr.schedule, pcr.binding)
        transport_aware = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(),
            cost=TransportAwareCost(graph, transport_weight=0.8),
            seed=31,
        ).place(pcr.schedule, pcr.binding)
        meter = TransportAwareCost(graph)
        assert meter.transport_distance(
            transport_aware.placement
        ) <= meter.transport_distance(area_only.placement)
