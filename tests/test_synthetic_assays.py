"""Tests for the synthetic workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.operations import OperationType
from repro.assay.synthetic import build_mix_tree, random_assay
from repro.synthesis.binder import ResourceBinder
from repro.synthesis.scheduler import list_schedule


class TestMixTree:
    def test_four_leaves_matches_pcr_shape(self):
        g = build_mix_tree(4)
        assert len(g) == 7
        assert len(g.sources()) == 4
        assert len(g.sinks()) == 1

    @pytest.mark.parametrize("leaves,expected", [(2, 3), (8, 15), (16, 31)])
    def test_node_count(self, leaves, expected):
        assert len(build_mix_tree(leaves)) == expected

    def test_all_mix_operations(self):
        g = build_mix_tree(8)
        assert all(op.type is OperationType.MIX for op in g)

    def test_every_internal_node_has_two_inputs(self):
        g = build_mix_tree(8)
        for op in g:
            indeg = len(g.predecessors(op.id))
            assert indeg in (0, 2)

    def test_non_power_of_two_rejected(self):
        for bad in (0, 1, 3, 6, 12):
            with pytest.raises(ValueError):
                build_mix_tree(bad)

    def test_hardware_hints_bind_from_standard_library(self):
        g = build_mix_tree(16)
        binding = ResourceBinder().bind(g)
        assert len(binding) == 31

    def test_tree_schedules(self):
        g = build_mix_tree(8)
        binding = ResourceBinder().bind(g)
        schedule = list_schedule(g, binding.durations(), max_concurrent_ops=4)
        schedule.validate_precedence(g)


class TestRandomAssay:
    def test_validates_by_construction(self):
        g = random_assay(operations=15, seed=1)
        g.validate()

    def test_deterministic_with_seed(self):
        a = random_assay(operations=10, seed=4)
        b = random_assay(operations=10, seed=4)
        assert a.edges() == b.edges()
        assert [op.id for op in a] == [op.id for op in b]

    def test_different_seeds_differ(self):
        a = random_assay(operations=20, seed=1)
        b = random_assay(operations=20, seed=2)
        assert a.edges() != b.edges()

    def test_all_sinks_are_outputs(self):
        g = random_assay(operations=12, seed=7)
        for sink in g.sinks():
            assert g.operation(sink).type is OperationType.OUTPUT

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_assay(operations=0)
        with pytest.raises(ValueError):
            random_assay(operations=5, store_fraction=1.5)

    @given(ops=st.integers(1, 25), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_any_random_assay_is_schedulable(self, ops, seed):
        """Property: every generated assay validates, binds from the
        standard library, and schedules under a concurrency cap."""
        g = random_assay(operations=ops, seed=seed)
        g.validate()
        binding = ResourceBinder().bind(g)
        schedule = list_schedule(g, binding.durations(), max_concurrent_ops=3)
        schedule.validate_precedence(g)
