"""Unit tests for the staircase data structure."""

from repro.fault.staircase import Staircase, Step


def collect(staircase: Staircase, heights: list[int]) -> list[tuple[int, int, int]]:
    """Feed a histogram through the staircase, returning emitted spans."""
    emitted = []
    for col, h in enumerate(heights):
        staircase.advance(col, h, lambda s, e, hh: emitted.append((s, e, hh)))
    staircase.finish_row(len(heights), lambda s, e, hh: emitted.append((s, e, hh)))
    return emitted


class TestStaircase:
    def test_starts_empty(self):
        s = Staircase()
        assert len(s) == 0
        assert s.top is None

    def test_rising_heights_stack_steps(self):
        s = Staircase()
        s.advance(0, 1, lambda *a: None)
        s.advance(1, 3, lambda *a: None)
        assert [st.height for st in s.steps()] == [1, 3]
        assert s.top == Step(1, 3)

    def test_equal_height_merges(self):
        s = Staircase()
        s.advance(0, 2, lambda *a: None)
        s.advance(1, 2, lambda *a: None)
        assert len(s) == 1
        assert s.top == Step(0, 2)

    def test_zero_height_never_pushed(self):
        s = Staircase()
        s.advance(0, 0, lambda *a: None)
        assert len(s) == 0

    def test_drop_emits_popped_step(self):
        emitted = collect(Staircase(), [3, 1])
        # Step (0, 3) pops at col 1; step height 1 spans both columns.
        assert (0, 0, 3) in emitted
        assert (0, 1, 1) in emitted

    def test_flat_histogram_emits_once(self):
        emitted = collect(Staircase(), [2, 2, 2])
        assert emitted == [(0, 2, 2)]

    def test_valley_histogram(self):
        emitted = collect(Staircase(), [3, 1, 3])
        assert (0, 0, 3) in emitted
        assert (2, 2, 3) in emitted
        assert (0, 2, 1) in emitted
        assert len(emitted) == 3

    def test_pop_derived_step_keeps_leftmost_start(self):
        # heights [3, 9, 5]: popping (1,9) at col 2 starts the height-5
        # step at column 1, not 2.
        emitted = collect(Staircase(), [3, 9, 5])
        assert (1, 2, 5) in emitted

    def test_staircase_invariant_heights_increase(self):
        s = Staircase()
        for col, h in enumerate([1, 5, 3, 7, 7, 2]):
            s.advance(col, h, lambda *a: None)
            heights = [st.height for st in s.steps()]
            assert heights == sorted(heights)
            assert len(set(heights)) == len(heights)

    def test_finish_row_clears(self):
        s = Staircase()
        s.advance(0, 4, lambda *a: None)
        s.finish_row(1, lambda *a: None)
        assert len(s) == 0

    def test_clear(self):
        s = Staircase()
        s.advance(0, 4, lambda *a: None)
        s.clear()
        assert s.top is None
