"""Property tests for the parameterized workload generators.

The generators promise three things the campaign layer builds on:
determinism (same seed, identical graph — ids, edges, everything),
structural validity (a DAG with exact operation arities and no loose
droplets), and synthesizability (any requested module budget in the
designed band binds and schedules through the existing pipeline).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesis.binder import ResourceBinder
from repro.synthesis.scheduler import list_schedule
from repro.workload.generator import (
    GENERATOR_FAMILIES,
    MIN_MODULES,
    GeneratorSpec,
    check_invariants,
    generate,
    module_count,
)

FAMILIES = sorted(GENERATOR_FAMILIES)

family_st = st.sampled_from(FAMILIES)


def graph_fingerprint(g):
    """Everything the determinism contract covers, as comparable data."""
    ops = tuple(
        (op.id, op.type.value, op.label, op.hardware)
        for op in sorted(g.operations(), key=lambda o: o.id)
    )
    edges = tuple(
        (u, v) for u in sorted(o.id for o in g.operations())
        for v in g.successors(u)
    )
    return ops, edges


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(family=family_st, n=st.integers(MIN_MODULES, 80),
           seed=st.integers(0, 2**32 - 1))
    def test_same_seed_identical_graph(self, family, n, seed):
        spec = f"gen:{family}:n={n}:seed={seed}"
        assert graph_fingerprint(generate(spec)) == graph_fingerprint(
            generate(spec)
        )

    def test_different_seeds_differ(self):
        # Not guaranteed per-family for tiny n, but mix-tree topology
        # at n=50 has astronomically many draws; equality would mean
        # the rng is not actually consulted.
        a = generate("gen:mix-tree:n=50:seed=1")
        b = generate("gen:mix-tree:n=50:seed=2")
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_canonical_spec_roundtrip(self):
        spec = GeneratorSpec.parse("gen:panel:seed=3:n=24")
        assert spec.canonical() == "gen:panel:n=24:seed=3"
        assert GeneratorSpec.parse(spec.canonical()) == spec


class TestStructuralInvariants:
    @settings(max_examples=15, deadline=None)
    @given(family=family_st, n=st.integers(MIN_MODULES, 120),
           seed=st.integers(0, 999))
    def test_valid_dag_with_exact_arities(self, family, n, seed):
        g = generate(f"gen:{family}:n={n}:seed={seed}")
        check_invariants(g)

    @settings(max_examples=15, deadline=None)
    @given(family=family_st, n=st.integers(MIN_MODULES, 120),
           seed=st.integers(0, 999))
    def test_exact_module_budget(self, family, n, seed):
        g = generate(f"gen:{family}:n={n}:seed={seed}")
        assert module_count(g) == n

    def test_n_out_of_band_rejected(self):
        with pytest.raises(ValueError, match="module count"):
            generate(f"gen:mix-tree:n={MIN_MODULES - 1}")
        with pytest.raises(ValueError, match="module count"):
            generate("gen:mix-tree:n=999999")


class TestSynthesizability:
    """50-500 module graphs bind and schedule through the pipeline."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("n", [50, 500])
    def test_binds_and_schedules(self, family, n):
        g = generate(f"gen:{family}:n={n}:seed={n}")
        binding = ResourceBinder().bind(g)
        sched = list_schedule(
            g, binding.durations(), max_concurrent_ops=3, max_parked=2
        )
        assert len(sched) == len(g)
        sched.validate_precedence(g)


class TestSpecParsing:
    @pytest.mark.parametrize(
        "bad",
        [
            "gen:warp:n=50",              # unknown family
            "gen:mix-tree",               # missing n
            "gen:mix-tree:n=abc",         # non-integer
            "gen:mix-tree:n=50:n=60",     # duplicate key
            "gen:mix-tree:n=50:bogus=1",  # unknown parameter
            "gen:mix-tree:50",            # not key=value
        ],
    )
    def test_malformed_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            GeneratorSpec.parse(bad)

    def test_family_params_validated(self):
        with pytest.raises(ValueError, match="store_pct"):
            generate("gen:mix-tree:n=50:store_pct=90")
