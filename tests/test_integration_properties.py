"""Cross-module property and integration tests.

These pin the contracts that individual unit tests cannot see:
random move sequences preserve placement invariants; arbitrary
generated assays survive the whole flow; the simulator's realized
timeline never beats the nominal schedule; and FTI, reconfiguration,
and Monte-Carlo survival tell one consistent story.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.synthetic import random_assay
from repro.fault.fti import compute_fti
from repro.placement.annealer import AnnealingParams
from repro.placement.initial import constructive_initial_placement
from repro.placement.moves import MoveGenerator
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.placement.window import ControllingWindow
from repro.sim.engine import BiochipSimulator
from repro.synthesis.flow import SynthesisFlow
from repro.synthesis.scheduler import list_schedule


class TestMoveInvariants:
    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_random_walks_preserve_structure(self, pcr_modules, seed, steps):
        """Any move sequence keeps: module count, op identity, specs,
        time spans, and in-core footprints. Only (x, y, rotation) move."""
        placement = constructive_initial_placement(pcr_modules, 12, 12)
        window = ControllingWindow(initial_temp=100, max_span=11)
        mover = MoveGenerator(window=window, seed=seed)
        original = {pm.op_id: pm for pm in placement}
        current = placement
        for _ in range(steps):
            current = mover.propose(current, 50.0)
        assert len(current) == len(original)
        for pm in current:
            ref = original[pm.op_id]
            assert pm.spec is ref.spec
            assert (pm.start, pm.stop) == (ref.start, ref.stop)
            fp = pm.footprint
            assert 1 <= fp.x and fp.x2 <= current.core_width
            assert 1 <= fp.y and fp.y2 <= current.core_height


class TestFlowOverRandomAssays:
    @given(ops=st.integers(3, 14), seed=st.integers(0, 500))
    @settings(max_examples=12, deadline=None)
    def test_flow_places_arbitrary_assays(self, ops, seed):
        graph = random_assay(operations=ops, seed=seed)
        flow = SynthesisFlow(
            placer=SimulatedAnnealingPlacer(
                params=AnnealingParams(
                    initial_temp=200.0,
                    cooling=0.7,
                    iterations_per_module=15,
                    freeze_rounds=2,
                    window_gamma=0.4,
                ),
                seed=seed,
            ),
            max_concurrent_ops=3,
        )
        result = flow.run(graph)
        result.placement_result.placement.validate()
        result.schedule.validate_precedence(graph)
        assert result.fti is not None and 0.0 <= result.fti <= 1.0

    def test_flow_without_fti(self):
        graph = random_assay(operations=6, seed=9)
        flow = SynthesisFlow(
            placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=1),
            compute_fti_report=False,
        )
        result = flow.run(graph)
        assert result.fti is None
        assert result.fti_report is None


class TestSimulatorContracts:
    def test_realized_never_beats_nominal(self, pcr):
        placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
        placement = placer.place(pcr.schedule, pcr.binding).placement
        sim = BiochipSimulator(pcr.graph, pcr.schedule, pcr.binding, placement)
        report = sim.run()
        for op_id, finish in report.realized_finish.items():
            assert finish >= pcr.schedule.stop(op_id) - 1e-9

    @pytest.mark.parametrize("fault_time", [2.0, 8.0, 12.0])
    def test_any_single_module_fault_recovers(self, pcr, fault_time):
        """With margin around the array, a single fault at any of these
        times is survivable and the product is always complete."""
        placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
        placement = placer.place(pcr.schedule, pcr.binding).placement
        sim = BiochipSimulator(
            pcr.graph, pcr.schedule, pcr.binding, placement, margin=3
        )
        active = [
            pm for pm in sim.placement
            if pm.start <= fault_time < pm.stop
        ]
        target = sorted(active, key=lambda pm: pm.op_id)[0]
        cell = next(iter(target.functional_region.cells()))
        report = sim.run(faults=[(fault_time, cell)])
        assert report.completed
        assert len(report.product.reagents) == 8


class TestFaultStoryConsistency:
    def test_fti_equals_per_cell_reconfiguration(self, sa_result):
        """compute_fti's covered set and the reconfigurer must agree on
        every single cell (exhaustive, not sampled)."""
        from repro.fault.reconfigure import PartialReconfigurer
        from repro.util.errors import ReconfigurationError

        placement = sa_result.placement
        report = compute_fti(placement)
        engine = PartialReconfigurer()
        for y in range(1, report.height + 1):
            for x in range(1, report.width + 1):
                try:
                    engine.apply(placement, (x, y))
                    survived = True
                except ReconfigurationError:
                    survived = False
                assert survived == report.is_covered((x, y)), (x, y)

    def test_two_placements_ranked_consistently(self, pcr):
        """If placement A has higher FTI than B, A's Monte-Carlo
        survival should not be materially worse."""
        from repro.fault.injection import estimate_survival_probability
        from repro.placement.two_stage import TwoStagePlacer

        min_area = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), seed=2
        ).place(pcr.schedule, pcr.binding).placement
        aware = TwoStagePlacer(
            beta=40.0, stage1_params=AnnealingParams.fast(), seed=7
        ).place(pcr.schedule, pcr.binding).placement
        fti_a = compute_fti(aware).fti
        fti_b = compute_fti(min_area).fti
        if fti_a > fti_b + 0.1:
            surv_a = estimate_survival_probability(aware, trials=150, seed=3)
            surv_b = estimate_survival_probability(min_area, trials=150, seed=3)
            assert surv_a > surv_b - 0.1


class TestScheduleCapacityInteraction:
    @given(cap_cells=st.sampled_from([54, 63, 80, 120]))
    @settings(max_examples=8, deadline=None)
    def test_tighter_capacity_never_shortens_makespan(self, pcr, cap_cells):
        footprints = {op: spec.footprint_area for op, spec in pcr.binding.items()}
        constrained = list_schedule(
            pcr.graph, pcr.binding.durations(),
            cell_capacity=cap_cells, footprints=footprints,
        )
        assert constrained.makespan >= 19.0 - 1e-9
        assert constrained.peak_cell_demand(footprints) <= cap_cells
