"""Tests for the simulator substrate: electrowetting model, droplets,
and the A* router."""

import pytest

from repro.geometry import Point, Rect
from repro.sim.droplet import Droplet
from repro.sim.electrowetting import ElectrowettingModel
from repro.sim.router import DropletRouter
from repro.util.errors import RoutingError


class TestElectrowettingModel:
    def test_below_threshold_no_motion(self):
        m = ElectrowettingModel()
        assert m.velocity_cm_s(0) == 0.0
        assert m.velocity_cm_s(12.0) == 0.0

    def test_saturation_velocity(self):
        m = ElectrowettingModel()
        # Paper Section 2: up to 20 cm/s at the top of the 0-90 V range.
        assert m.velocity_cm_s(90.0) == pytest.approx(20.0)
        assert m.velocity_cm_s(200.0) == pytest.approx(20.0)  # clamped

    def test_velocity_monotone_in_voltage(self):
        m = ElectrowettingModel()
        vels = [m.velocity_cm_s(v) for v in range(0, 95, 5)]
        assert vels == sorted(vels)

    def test_quadratic_shape(self):
        m = ElectrowettingModel()
        mid = (m.threshold_v + m.saturation_v) / 2
        # Halfway up the drive range gives a quarter of max velocity.
        assert m.velocity_cm_s(mid) == pytest.approx(5.0)

    def test_step_time(self):
        m = ElectrowettingModel()
        # 1.5 mm pitch at 20 cm/s -> 7.5 ms per cell.
        assert m.step_time_s(90.0) == pytest.approx(0.0075)

    def test_step_time_below_threshold_raises(self):
        with pytest.raises(ValueError, match="threshold"):
            ElectrowettingModel().step_time_s(5.0)

    def test_transport_time_scales_linearly(self):
        m = ElectrowettingModel()
        assert m.transport_time_s(10) == pytest.approx(10 * m.step_time_s(65.0))
        assert m.transport_time_s(0) == 0.0

    def test_negative_inputs_rejected(self):
        m = ElectrowettingModel()
        with pytest.raises(ValueError):
            m.velocity_cm_s(-1)
        with pytest.raises(ValueError):
            m.transport_time_s(-1)

    def test_invalid_model_params(self):
        with pytest.raises(ValueError):
            ElectrowettingModel(threshold_v=100.0, saturation_v=90.0)
        with pytest.raises(ValueError):
            ElectrowettingModel(max_velocity_cm_s=0)


class TestDroplet:
    def test_volume_and_reagents(self):
        d = Droplet(position=Point(1, 1), contents={"a": 500.0, "b": 250.0})
        assert d.volume_nl == 750.0
        assert d.reagents == {"a", "b"}

    def test_unique_ids(self):
        a = Droplet(position=None)
        b = Droplet(position=None)
        assert a.droplet_id != b.droplet_id

    def test_merge_adds_volumes(self):
        a = Droplet(position=Point(1, 1), contents={"x": 100.0})
        b = Droplet(position=Point(1, 2), contents={"x": 50.0, "y": 25.0})
        merged = a.merged_with(b, produced_by="mix1")
        assert merged.contents == {"x": 150.0, "y": 25.0}
        assert merged.position == Point(1, 1)
        assert merged.produced_by == "mix1"
        assert merged.droplet_id not in (a.droplet_id, b.droplet_id)

    def test_concentration(self):
        d = Droplet(position=None, contents={"x": 75.0, "y": 25.0})
        assert d.concentration("x") == pytest.approx(0.75)
        assert d.concentration("absent") == 0.0

    def test_empty_droplet_concentration(self):
        assert Droplet(position=None).concentration("x") == 0.0

    def test_str_mentions_contents(self):
        d = Droplet(position=Point(2, 3), contents={"KCl": 900.0})
        assert "KCl" in str(d)


class TestDropletRouter:
    def test_straight_route(self):
        r = DropletRouter(8, 8)
        route = r.route(Point(1, 1), Point(5, 1))
        assert route.start == Point(1, 1)
        assert route.end == Point(5, 1)
        assert route.length == 4

    def test_route_is_adjacent_chain(self):
        r = DropletRouter(8, 8)
        route = r.route(Point(1, 1), Point(6, 7))
        cells = list(route)
        for a, b in zip(cells, cells[1:]):
            assert a.manhattan_distance(b) == 1

    def test_shortest_without_obstacles(self):
        r = DropletRouter(10, 10)
        route = r.route(Point(2, 2), Point(7, 9))
        assert route.length == Point(2, 2).manhattan_distance(Point(7, 9))

    def test_detours_around_module(self):
        r = DropletRouter(8, 8)
        wall = Rect(4, 1, 1, 7)  # vertical wall with a gap at the top
        route = r.route(Point(1, 1), Point(8, 1), blocked_rects=[wall])
        assert route.length > 7
        assert all(not wall.contains_point(c) for c in route)

    def test_no_path_raises(self):
        r = DropletRouter(8, 8)
        wall = Rect(4, 1, 1, 8)  # full-height wall
        with pytest.raises(RoutingError):
            r.route(Point(1, 1), Point(8, 1), blocked_rects=[wall])

    def test_blocked_cells_avoided(self):
        r = DropletRouter(5, 1)
        with pytest.raises(RoutingError):
            r.route(Point(1, 1), Point(5, 1), blocked_cells=[Point(3, 1)])

    def test_same_start_goal(self):
        r = DropletRouter(4, 4)
        route = r.route(Point(2, 2), Point(2, 2))
        assert route.length == 0

    def test_droplet_inflation_respected(self):
        r = DropletRouter(3, 9)
        # A parked droplet in the middle column inflates to a 3x3 block,
        # sealing the 3-wide corridor.
        with pytest.raises(RoutingError):
            r.route(Point(2, 1), Point(2, 9), other_droplets=[Point(2, 5)])

    def test_inflation_disabled_squeezes_past(self):
        r = DropletRouter(3, 9)
        route = r.route(
            Point(2, 1), Point(2, 9), other_droplets=[Point(2, 5)], inflate=False
        )
        assert Point(2, 5) not in set(route)

    def test_goal_droplet_merge_exemption(self):
        r = DropletRouter(5, 5)
        # Goal cell holds the droplet we are merging with.
        route = r.route(
            Point(1, 1), Point(3, 3), other_droplets=[Point(3, 3)]
        )
        assert route.end == Point(3, 3)

    def test_out_of_bounds_endpoints(self):
        r = DropletRouter(4, 4)
        with pytest.raises(RoutingError):
            r.route(Point(0, 1), Point(2, 2))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            DropletRouter(0, 4)
