"""Equivalence tests for the packed routing engine.

The packed :class:`TimeGrid` and the original
:class:`ReferenceTimeGrid` must be observationally identical on the
array: same ``static_blocked``/``reserved_blocked``/``blocked`` answers
over arbitrary obstacle/reservation soups, and — through the router —
bit-identical routing plans at fixed seeds, with and without fault
injection. The incremental negotiation must degrade gracefully to the
reference shape's results on batches the first round cannot finish.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.catalog import BUNDLED_ASSAYS
from repro.geometry import Point, Rect
from repro.pipeline.context import SynthesisContext
from repro.pipeline.stages import BindStage, PlaceStage, ScheduleStage
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.routing import (
    CrossCheckTimeGrid,
    Net,
    PrioritizedRouter,
    ReferenceTimeGrid,
    RoutedNet,
    RoutingSynthesizer,
    TimeGrid,
)

OPS = ("OPA", "OPB", "OPC")


def _random_walk(rng: random.Random, width: int, height: int) -> tuple[Point, ...]:
    x = rng.randint(1, width)
    y = rng.randint(1, height)
    cells = [Point(x, y)]
    for _ in range(rng.randint(0, 8)):
        dx, dy = rng.choice(((0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)))
        nx, ny = cells[-1].x + dx, cells[-1].y + dy
        if 1 <= nx <= width and 1 <= ny <= height:
            cells.append(Point(nx, ny))
        else:
            cells.append(cells[-1])
    return tuple(cells)


def _build_soup(seed: int) -> tuple[TimeGrid, ReferenceTimeGrid, int, list[Net]]:
    """The same random obstacle/reservation soup applied to both grids,
    plus probe nets with assorted producer/consumer exemptions."""
    rng = random.Random(seed)
    width, height = rng.randint(4, 8), rng.randint(4, 8)
    packed, reference = TimeGrid(width, height), ReferenceTimeGrid(width, height)
    cells = [Point(x, y) for x in range(1, width + 1) for y in range(1, height + 1)]

    for grids_cells in (rng.sample(cells, rng.randint(0, 4)),):
        packed.add_faulty(grids_cells)
        reference.add_faulty(grids_cells)
    parked = rng.sample(cells, rng.randint(0, 2))
    packed.add_parked(parked)
    reference.add_parked(parked)
    for op in OPS:
        if rng.random() < 0.7:
            w = rng.randint(1, max(1, width - 1))
            h = rng.randint(1, max(1, height - 1))
            rect = Rect(rng.randint(1, width - w + 1), rng.randint(1, height - h + 1), w, h)
            if rng.random() < 0.5:
                packed.add_module(rect, op)
                reference.add_module(rect, op)
            else:
                packed.add_region(op, rect)
                reference.add_region(op, rect)

    horizon = rng.randint(8, 16)
    reserved_ids = []
    for i in range(rng.randint(1, 5)):
        walk = _random_walk(rng, width, height)
        net = Net(
            f"n{i}",
            walk[0],
            walk[-1],
            producer=rng.choice((None, *OPS)),
            consumer=rng.choice((None, *OPS)),
        )
        rn = RoutedNet(net, walk)
        packed.reserve(rn, horizon)
        reference.reserve(rn, horizon)
        reserved_ids.append(net.net_id)
    for net_id in reserved_ids:
        if rng.random() < 0.4:
            packed.remove_reservation(net_id)
            reference.remove_reservation(net_id)

    probes = [
        Net(
            f"probe{i}",
            rng.choice(cells),
            rng.choice(cells),
            producer=rng.choice((None, *OPS)),
            consumer=rng.choice((None, *OPS)),
        )
        for i in range(2)
    ]
    return packed, reference, horizon, probes


class TestGridParity:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**9))
    def test_blocked_answers_identical_over_random_soups(self, seed):
        packed, reference, horizon, probes = _build_soup(seed)
        cells = [
            Point(x, y)
            for x in range(1, packed.width + 1)
            for y in range(1, packed.height + 1)
        ]
        for net in probes:
            exempt = net.exempt_ops
            for cell in cells:
                assert packed.static_blocked(cell, exempt) == reference.static_blocked(
                    cell, exempt
                ), (seed, cell)
                assert packed.static_blocked(
                    cell, exempt, ignore_parked_halo=True
                ) == reference.static_blocked(cell, exempt, ignore_parked_halo=True)
                # Reservations are defined through the reserve horizon
                # (+1: the halo window of the last covered step).
                for step in range(0, horizon + 2):
                    assert packed.reserved_blocked(
                        cell, step, net
                    ) == reference.reserved_blocked(cell, step, net), (seed, cell, step)
                    assert packed.blocked(cell, step, net) == reference.blocked(
                        cell, step, net
                    ), (seed, cell, step)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**9))
    def test_route_one_identical_over_random_soups(self, seed):
        packed, reference, horizon, probes = _build_soup(seed)
        router = PrioritizedRouter()
        from repro.util.errors import RoutingError

        for net in probes:
            try:
                packed_route = router.route_one(net, packed, horizon)
            except RoutingError:
                with pytest.raises(RoutingError):
                    router.route_one(net, reference, horizon)
                continue
            assert packed_route == router.route_one(net, reference, horizon)


def _synthesis_inputs(assay: str):
    graph, binding = BUNDLED_ASSAYS[assay]()
    context = SynthesisContext(graph=graph, explicit_binding=binding)
    BindStage().run(context)
    ScheduleStage(max_concurrent_ops=3).run(context)
    PlaceStage(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2),
        compute_fti_report=False,
    ).run(context)
    return graph, context.schedule, context.placement_result.placement


def _fault_sample(placement, rate=0.10, seed=1, margin=2):
    covered = {
        (c.x, c.y) for pm in placement for c in pm.footprint.cells()
    }
    streets = sorted(
        (x, y)
        for x in range(1 - margin, placement.core_width + margin + 1)
        for y in range(1 - margin, placement.core_height + margin + 1)
        if (x, y) not in covered
    )
    rng = random.Random(seed)
    return rng.sample(streets, max(1, round(rate * len(streets))))


class TestPlanIdentity:
    @pytest.mark.parametrize("assay", sorted(BUNDLED_ASSAYS))
    def test_packed_and_reference_plans_identical(self, assay):
        graph, schedule, placement = _synthesis_inputs(assay)
        for faults in ([], _fault_sample(placement)):
            packed_plan = RoutingSynthesizer().synthesize(
                graph, schedule, placement, faults
            )
            ref_plan = RoutingSynthesizer(reference=True).synthesize(
                graph, schedule, placement, faults
            )
            assert packed_plan == ref_plan
        # The fault-free plan must also prove itself conflict-free.
        RoutingSynthesizer().synthesize(graph, schedule, placement).verify()

    def test_cross_check_mode_matches_default(self):
        graph, schedule, placement = _synthesis_inputs("pcr")
        default_plan = RoutingSynthesizer().synthesize(graph, schedule, placement)
        checked_plan = RoutingSynthesizer(cross_check=True).synthesize(
            graph, schedule, placement
        )
        assert checked_plan == default_plan

    def test_reference_and_cross_check_are_exclusive(self):
        with pytest.raises(ValueError):
            RoutingSynthesizer(reference=True, cross_check=True)

    def test_custom_router_rejects_engine_flags(self):
        # The flags configure grid factory AND negotiation shape; with
        # a caller-supplied router only half would apply.
        with pytest.raises(ValueError, match="custom router"):
            RoutingSynthesizer(router=PrioritizedRouter(), reference=True)
        with pytest.raises(ValueError, match="custom router"):
            RoutingSynthesizer(router=PrioritizedRouter(), cross_check=True)


class TestCrossCheckGrid:
    def test_reports_divergence_at_the_query(self):
        grid = CrossCheckTimeGrid(6, 6)
        grid.add_faulty([Point(3, 3)])
        net = Net("n", Point(1, 1), Point(6, 6))
        assert grid.blocked(Point(3, 3), 0, net)
        assert not grid.blocked(Point(5, 5), 0, net)
        # Poison the shadow only: the next query must raise.
        grid._shadow.add_faulty([Point(5, 5)])
        from repro.util.errors import RoutingError

        with pytest.raises(RoutingError, match="cross-check"):
            grid.blocked(Point(5, 5), 0, net)


class TestIncrementalNegotiation:
    def _trapped_batch(self):
        # "inner" starts walled in by "outer"'s parked droplet next door
        # in a dead-end corridor; only routing "outer" first can free it
        # (mirrors the prioritized-router yield-negotiation test).
        grid = TimeGrid(9, 5)
        grid.add_module(Rect(1, 1, 1, 5), "WALL")
        nets = [
            Net("inner", Point(2, 2), Point(9, 2), priority=5.0),
            Net("outer", Point(3, 2), Point(9, 5)),
        ]
        return grid, nets

    def test_incremental_router_frees_trapped_net(self):
        from repro.routing import RoutingEpoch, RoutingPlan

        grid, nets = self._trapped_batch()
        router = PrioritizedRouter()
        routed, failed = router.route_all(nets, grid)
        assert not failed
        assert router.last_rounds > 1  # negotiation actually happened
        epoch = RoutingEpoch(
            time_s=0.0,
            step_offset=0,
            nets=tuple(routed),
            regions=grid.regions(),
            faulty=grid.faulty,
            parked=grid.parked,
        )
        RoutingPlan(grid.width, grid.height, (epoch,)).verify()

    def test_incremental_matches_reference_outcome(self):
        grid_a, nets = self._trapped_batch()
        routed_inc, failed_inc = PrioritizedRouter().route_all(nets, grid_a)
        grid_b, nets = self._trapped_batch()
        routed_ref, failed_ref = PrioritizedRouter(reference=True).route_all(
            nets, grid_b
        )
        assert not failed_inc and not failed_ref
        assert {rn.net.net_id for rn in routed_inc} == {
            rn.net.net_id for rn in routed_ref
        }

    def test_cross_check_router_on_clean_batch(self):
        grid = TimeGrid(10, 10)
        nets = [
            Net("a", Point(1, 1), Point(10, 1), priority=2.0),
            Net("b", Point(1, 10), Point(10, 10)),
        ]
        routed, failed = PrioritizedRouter(cross_check=True).route_all(nets, grid)
        assert not failed
        assert {rn.net.net_id for rn in routed} == {"a", "b"}


class TestReservationPruning:
    @pytest.mark.parametrize("grid_cls", [TimeGrid, ReferenceTimeGrid])
    def test_remove_reservation_releases_all_keys(self, grid_cls):
        grid = grid_cls(10, 10)
        rng = random.Random(3)
        for i in range(6):
            walk = _random_walk(rng, 10, 10)
            grid.reserve(RoutedNet(Net(f"n{i}", walk[0], walk[-1]), walk), horizon=30)
        assert grid.reservation_footprint() > 0
        for i in range(6):
            grid.remove_reservation(f"n{i}")
        assert grid.reservation_footprint() == 0

    @pytest.mark.parametrize("grid_cls", [TimeGrid, ReferenceTimeGrid])
    def test_negotiation_churn_does_not_grow_footprint(self, grid_cls):
        # Reserve/remove/re-reserve the same trajectories across many
        # simulated negotiation rounds: the footprint must stay exactly
        # what a single round leaves behind (the pre-fix grids kept
        # empty entry lists and per-step dicts forever).
        grid = grid_cls(12, 12)
        rng = random.Random(5)
        walks = [_random_walk(rng, 12, 12) for _ in range(5)]
        nets = [Net(f"n{i}", w[0], w[-1]) for i, w in enumerate(walks)]

        def one_round():
            for net, walk in zip(nets, walks):
                grid.reserve(RoutedNet(net, walk), horizon=40)

        one_round()
        baseline = grid.reservation_footprint()
        for _ in range(25):
            for net in nets:
                grid.remove_reservation(net.net_id)
            one_round()
        assert grid.reservation_footprint() == baseline
