"""Tests for the prioritized time-expanded router (edge cases included)."""

import pytest

from repro.geometry import Point, Rect
from repro.routing import Net, PrioritizedRouter, RoutingEpoch, RoutingPlan, TimeGrid
from repro.util.errors import RoutingError


def verify(grid, routed, time_s=0.0):
    """Wrap routed nets of one batch into a plan and run the verifier."""
    epoch = RoutingEpoch(
        time_s=time_s,
        step_offset=0,
        nets=tuple(routed),
        modules=tuple(),
        regions=grid.regions(),
        faulty=grid.faulty,
        parked=grid.parked,
    )
    RoutingPlan(grid.width, grid.height, (epoch,)).verify()


class TestSingleNet:
    def test_straight_route(self):
        grid = TimeGrid(8, 8)
        rn = PrioritizedRouter().route_one(Net("n", Point(1, 1), Point(6, 1)), grid, 30)
        assert rn.moves == 5
        assert rn.waits == 0
        assert rn.cells[0] == Point(1, 1)
        assert rn.cells[-1] == Point(6, 1)

    def test_start_equals_goal_is_zero_latency(self):
        grid = TimeGrid(8, 8)
        rn = PrioritizedRouter().route_one(Net("n", Point(3, 3), Point(3, 3)), grid, 30)
        assert rn.cells == (Point(3, 3),)
        assert rn.latency == 0
        assert rn.moves == 0

    def test_off_array_endpoints_rejected(self):
        grid = TimeGrid(8, 8)
        with pytest.raises(RoutingError):
            PrioritizedRouter().route_one(Net("n", Point(0, 1), Point(5, 5)), grid, 30)
        with pytest.raises(RoutingError):
            PrioritizedRouter().route_one(Net("n", Point(1, 1), Point(9, 5)), grid, 30)

    def test_goal_inside_fluidic_halo_raises(self):
        grid = TimeGrid(8, 8)
        grid.add_parked([Point(5, 5)])
        with pytest.raises(RoutingError, match="statically blocked"):
            PrioritizedRouter().route_one(Net("n", Point(1, 1), Point(5, 6)), grid, 30)

    def test_goal_on_faulty_cell_raises(self):
        grid = TimeGrid(8, 8)
        grid.add_faulty([Point(5, 5)])
        with pytest.raises(RoutingError, match="statically blocked"):
            PrioritizedRouter().route_one(Net("n", Point(1, 1), Point(5, 5)), grid, 30)

    def test_fully_blocked_grid_raises(self):
        grid = TimeGrid(5, 3)
        grid.add_faulty([Point(3, 1), Point(3, 2), Point(3, 3)])
        with pytest.raises(RoutingError):
            PrioritizedRouter().route_one(Net("n", Point(1, 2), Point(5, 2)), grid, 40)

    def test_detour_around_faulty_wall_with_gap(self):
        grid = TimeGrid(5, 5)
        grid.add_faulty([Point(3, 1), Point(3, 2), Point(3, 3), Point(3, 4)])
        rn = PrioritizedRouter().route_one(Net("n", Point(1, 2), Point(5, 2)), grid, 40)
        assert Point(3, 5) in rn.cells  # the only gap
        assert rn.moves > 4

    def test_foreign_module_is_obstacle_own_consumer_is_not(self):
        grid = TimeGrid(9, 5)
        grid.add_module(Rect(4, 1, 3, 5), "OTHER")
        with pytest.raises(RoutingError):
            PrioritizedRouter().route_one(Net("n", Point(1, 3), Point(9, 3)), grid, 60)
        grid2 = TimeGrid(9, 5)
        grid2.add_module(Rect(4, 1, 3, 5), "MINE")
        rn = PrioritizedRouter().route_one(
            Net("n", Point(1, 3), Point(5, 3), consumer="MINE"), grid2, 60
        )
        assert rn.cells[-1] == Point(5, 3)


class TestBatchRouting:
    def test_crossing_nets_stay_conflict_free(self):
        grid = TimeGrid(9, 9)
        nets = [
            Net("a", Point(1, 5), Point(9, 5), priority=1.0),
            Net("b", Point(5, 1), Point(5, 9)),
        ]
        routed, failed = PrioritizedRouter().route_all(nets, grid)
        assert not failed
        verify(grid, routed)
        by_id = {rn.net.net_id: rn for rn in routed}
        # The critical net goes straight; the other yields (waits or detours).
        assert by_id["a"].latency == 8
        assert by_id["b"].latency > 8

    def test_unique_net_ids_required(self):
        grid = TimeGrid(5, 5)
        nets = [Net("x", Point(1, 1), Point(5, 5)), Net("x", Point(5, 1), Point(1, 5))]
        with pytest.raises(ValueError):
            PrioritizedRouter().route_all(nets, grid)

    def test_strict_raises_and_nonstrict_reports(self):
        def blocked_grid():
            grid = TimeGrid(5, 3)
            grid.add_faulty([Point(3, 1), Point(3, 2), Point(3, 3)])
            return grid

        nets = [Net("w", Point(1, 2), Point(5, 2))]
        with pytest.raises(RoutingError, match="unroutable"):
            PrioritizedRouter().route_all(nets, blocked_grid())
        routed, failed = PrioritizedRouter(strict=False).route_all(nets, blocked_grid())
        assert not routed
        assert [n.net_id for n in failed] == ["w"]

    def test_unrouted_sources_are_respected(self):
        # Net "b" never moves (start == goal); "a" must not drive
        # through b's parked droplet even though b routes second.
        grid = TimeGrid(7, 5)
        nets = [
            Net("a", Point(1, 2), Point(7, 2), priority=10.0),
            Net("b", Point(4, 2), Point(4, 2)),
        ]
        routed, failed = PrioritizedRouter().route_all(nets, grid)
        assert not failed
        verify(grid, routed)
        a = next(rn for rn in routed if rn.net.net_id == "a")
        # Every intermediate position keeps the one-cell fluidic gap.
        assert all(max(abs(c.x - 4), abs(c.y - 2)) > 1 for c in a.cells[1:-1])

    def test_yield_negotiation_frees_trapped_net(self):
        # "inner" starts walled in by "outer"'s parked droplet next door
        # in a dead-end corridor; only routing "outer" first can free it.
        grid = TimeGrid(9, 5)
        grid.add_module(Rect(1, 1, 1, 5), "WALL")
        nets = [
            Net("inner", Point(2, 2), Point(9, 2), priority=5.0),
            Net("outer", Point(3, 2), Point(9, 5)),
        ]
        routed, failed = PrioritizedRouter().route_all(nets, grid)
        assert not failed
        verify(grid, routed)

    def test_empty_batch(self):
        routed, failed = PrioritizedRouter().route_all([], TimeGrid(4, 4))
        assert routed == [] and failed == []


class TestWaitInPlace:
    def test_congestion_forces_waits_or_detours(self):
        # Single-lane corridor, two nets in the same direction, the
        # trailing one released from a cell the leader must pass.
        grid = TimeGrid(12, 1)
        nets = [
            Net("lead", Point(3, 1), Point(12, 1), priority=1.0),
            Net("trail", Point(1, 1), Point(10, 1)),
        ]
        routed, failed = PrioritizedRouter().route_all(nets, grid)
        assert not failed
        verify(grid, routed)
        trail = next(rn for rn in routed if rn.net.net_id == "trail")
        assert trail.waits > 0  # a 1-wide corridor leaves no detour
