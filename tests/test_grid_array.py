"""Unit tests for the microfluidic array, cells, and ports."""

import pytest

from repro.geometry import Point, Rect
from repro.grid.array import MicrofluidicArray, Port
from repro.grid.cell import Cell, CellHealth, Electrode


class TestElectrode:
    def test_starts_inactive(self):
        e = Electrode()
        assert e.voltage == 0.0
        assert not e.is_active

    def test_activate_default_max(self):
        e = Electrode()
        e.activate()
        assert e.voltage == 90.0
        assert e.is_active

    def test_activate_below_threshold_is_not_active(self):
        e = Electrode()
        e.activate(5.0)
        assert not e.is_active

    def test_overdrive_rejected(self):
        e = Electrode()
        with pytest.raises(ValueError):
            e.activate(120.0)

    def test_deactivate(self):
        e = Electrode()
        e.activate()
        e.deactivate()
        assert e.voltage == 0.0


class TestCell:
    def test_healthy_by_default(self):
        c = Cell(1, 1)
        assert c.health is CellHealth.HEALTHY
        assert not c.is_faulty

    def test_mark_faulty_deactivates_electrode(self):
        c = Cell(1, 1)
        c.electrode.activate()
        c.mark_faulty()
        assert c.is_faulty
        assert c.electrode.voltage == 0.0

    def test_repair(self):
        c = Cell(1, 1)
        c.mark_faulty()
        c.repair()
        assert not c.is_faulty

    def test_str_marks_faults(self):
        c = Cell(2, 3)
        assert "!" not in str(c)
        c.mark_faulty()
        assert "!" in str(c)


class TestArrayGeometry:
    def test_dimensions_and_area(self):
        a = MicrofluidicArray(9, 7)
        assert a.cell_count == 63
        assert a.bounds == Rect(1, 1, 9, 7)
        # Paper: 63 cells at 1.5 mm pitch = 141.75 mm^2.
        assert a.area_mm2 == pytest.approx(141.75)

    def test_cell_area(self):
        assert MicrofluidicArray(2, 2).cell_area_mm2 == pytest.approx(2.25)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MicrofluidicArray(0, 5)
        with pytest.raises(ValueError):
            MicrofluidicArray(5, 5, pitch_mm=0)

    def test_in_bounds(self):
        a = MicrofluidicArray(4, 3)
        assert a.in_bounds((1, 1))
        assert a.in_bounds((4, 3))
        assert not a.in_bounds((5, 3))
        assert not a.in_bounds((0, 1))

    def test_contains_rect(self):
        a = MicrofluidicArray(5, 5)
        assert a.contains_rect(Rect(1, 1, 5, 5))
        assert not a.contains_rect(Rect(3, 3, 4, 4))

    def test_cell_lookup_out_of_bounds(self):
        with pytest.raises(KeyError):
            MicrofluidicArray(3, 3).cell((4, 1))

    def test_cells_iteration_count(self):
        a = MicrofluidicArray(4, 5)
        assert sum(1 for _ in a.cells()) == 20

    def test_neighbors_corner(self):
        a = MicrofluidicArray(4, 4)
        assert set(a.neighbors((1, 1))) == {Point(2, 1), Point(1, 2)}

    def test_neighbors_interior(self):
        a = MicrofluidicArray(4, 4)
        assert len(a.neighbors((2, 2))) == 4


class TestArrayFaults:
    def test_mark_and_query(self):
        a = MicrofluidicArray(5, 5)
        a.mark_faulty((3, 4))
        assert a.is_faulty((3, 4))
        assert a.faulty_cells() == [Point(3, 4)]

    def test_repair(self):
        a = MicrofluidicArray(5, 5)
        a.mark_faulty((2, 2))
        a.repair((2, 2))
        assert a.faulty_cells() == []

    def test_multiple_faults(self):
        a = MicrofluidicArray(5, 5)
        a.mark_faulty((1, 1))
        a.mark_faulty((5, 5))
        assert len(a.faulty_cells()) == 2


class TestPorts:
    def test_add_and_lookup(self):
        a = MicrofluidicArray(6, 6)
        a.add_port(Port("sample", Point(1, 3)))
        assert a.port("sample").location == Point(1, 3)
        assert len(a.ports()) == 1

    def test_port_must_be_on_boundary(self):
        a = MicrofluidicArray(6, 6)
        with pytest.raises(ValueError):
            a.add_port(Port("bad", Point(3, 3)))

    def test_port_outside_rejected(self):
        a = MicrofluidicArray(6, 6)
        with pytest.raises(ValueError):
            a.add_port(Port("bad", Point(7, 3)))

    def test_duplicate_name_rejected(self):
        a = MicrofluidicArray(6, 6)
        a.add_port(Port("p", Point(1, 1)))
        with pytest.raises(ValueError):
            a.add_port(Port("p", Point(6, 6)))

    def test_constructor_ports(self):
        a = MicrofluidicArray(4, 4, ports=[Port("in", Point(1, 2)), Port("out", Point(4, 2))])
        assert {p.name for p in a.ports()} == {"in", "out"}
