"""Shared fixtures: the PCR case study and pre-computed placements.

Placement runs are the expensive part of the suite, so session-scoped
fixtures run each placer once and share the result; tests must treat
them as read-only (copy before mutating).
"""

from __future__ import annotations

import pytest

from repro.experiments.pcr import pcr_case_study
from repro.placement.annealer import AnnealingParams
from repro.placement.greedy import GreedyPlacer, build_placed_modules
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.placement.two_stage import TwoStagePlacer


@pytest.fixture(scope="session")
def pcr():
    """The paper's case study: graph + Table 1 binding + schedule."""
    return pcr_case_study()


@pytest.fixture(scope="session")
def pcr_modules(pcr):
    """Unplaced PCR modules (fresh list per test is unnecessary —
    PlacedModule is immutable)."""
    return build_placed_modules(pcr.schedule, pcr.binding)


@pytest.fixture(scope="session")
def sa_result(pcr):
    """One fault-oblivious SA placement of the PCR assay (seed 2)."""
    placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
    return placer.place(pcr.schedule, pcr.binding)


@pytest.fixture(scope="session")
def greedy_result(pcr):
    """The greedy baseline placement of the PCR assay."""
    return GreedyPlacer().place(pcr.schedule, pcr.binding)


@pytest.fixture(scope="session")
def two_stage_result(pcr):
    """One two-stage placement at beta=30 with small test schedules."""
    placer = TwoStagePlacer(
        beta=30.0,
        stage1_params=AnnealingParams.fast(),
        stage2_params=AnnealingParams(
            initial_temp=30.0,
            cooling=0.8,
            iterations_per_module=25,
            freeze_rounds=2,
            window_gamma=0.4,
        ),
        seed=7,
    )
    return placer.place(pcr.schedule, pcr.binding)
