"""Tests for the generic simulated-annealing engine (paper Figure 3)."""

import math
import random

import pytest

from repro.placement.annealer import (
    AnnealingParams,
    AnnealingStats,
    SimulatedAnnealing,
)
from repro.placement.window import ControllingWindow


def quadratic_cost(x: float) -> float:
    return (x - 3.0) ** 2


def gaussian_step(x: float, temperature: float, rng: random.Random) -> float:
    return x + rng.gauss(0, 0.5)


class TestAnnealingParams:
    def test_paper_preset_matches_section_4d(self):
        p = AnnealingParams.paper()
        assert p.initial_temp == 10000.0
        assert p.cooling == 0.9
        assert p.iterations_per_module == 400

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingParams(initial_temp=0)
        with pytest.raises(ValueError):
            AnnealingParams(cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingParams(iterations_per_module=0)
        with pytest.raises(ValueError):
            AnnealingParams(freeze_rounds=0)

    def test_make_window_shares_schedule(self):
        p = AnnealingParams.fast()
        w = p.make_window(max_span=9)
        assert w.initial_temp == p.initial_temp
        assert w.max_span == 9
        assert w.gamma == p.window_gamma

    def test_presets_are_distinct(self):
        presets = {
            AnnealingParams.paper().initial_temp,
            AnnealingParams.balanced().initial_temp,
            AnnealingParams.fast().initial_temp,
            AnnealingParams.low_temperature().initial_temp,
        }
        assert len(presets) == 4


class TestEngine:
    def run_engine(self, seed=1, params=None, window=None):
        rng = random.Random(seed)
        params = params or AnnealingParams(
            initial_temp=10.0, cooling=0.8, iterations_per_module=1,
            min_temp=1e-3, freeze_rounds=2,
        )
        engine = SimulatedAnnealing(params, window=window, seed=seed)
        return engine.optimize(
            10.0,
            quadratic_cost,
            lambda x, t: gaussian_step(x, t, rng),
            inner_iterations=50,
        )

    def test_optimizes_toward_minimum(self):
        best, stats = self.run_engine()
        assert quadratic_cost(best) < quadratic_cost(10.0)
        assert abs(best - 3.0) < 1.0

    def test_stats_are_consistent(self):
        _, stats = self.run_engine()
        assert stats.evaluations == stats.rounds * 50
        assert 0 < stats.acceptances <= stats.evaluations
        assert stats.improvements <= stats.acceptances
        assert stats.best_cost <= stats.initial_cost
        assert len(stats.history) == stats.rounds

    def test_stop_reason_min_temp(self):
        _, stats = self.run_engine()
        assert stats.stop_reason == "min-temp"

    def test_stop_reason_window_frozen(self):
        window = ControllingWindow(initial_temp=10.0, max_span=4, gamma=1.0)
        _, stats = self.run_engine(window=window)
        assert stats.stop_reason == "window-frozen"

    def test_stop_reason_max_rounds(self):
        params = AnnealingParams(
            initial_temp=10.0, cooling=0.99, iterations_per_module=1, max_rounds=3
        )
        engine = SimulatedAnnealing(params, seed=0)
        rng = random.Random(0)
        _, stats = engine.optimize(
            10.0, quadratic_cost, lambda x, t: gaussian_step(x, t, rng), 10
        )
        assert stats.rounds == 3
        assert stats.stop_reason == "max-rounds"

    def test_deterministic_given_seed(self):
        # Both the engine's acceptance stream and the proposal stream
        # must be seeded for reproducibility.
        def run(seed):
            rng = random.Random(seed)
            engine = SimulatedAnnealing(
                AnnealingParams(initial_temp=5, cooling=0.7, iterations_per_module=1),
                seed=seed,
            )
            return engine.optimize(
                8.0, quadratic_cost, lambda x, t: gaussian_step(x, t, rng), 30
            )[0]
        assert run(7) == run(7)

    def test_invalid_inner_iterations(self):
        engine = SimulatedAnnealing(seed=0)
        with pytest.raises(ValueError):
            engine.optimize(0.0, quadratic_cost, lambda x, t: x, 0)

    def test_acceptance_ratio_bounds(self):
        _, stats = self.run_engine()
        assert 0.0 < stats.acceptance_ratio <= 1.0

    def test_best_never_worse_than_history(self):
        _, stats = self.run_engine()
        best_costs = [b for _, _, b in stats.history]
        assert best_costs == sorted(best_costs, reverse=True)

    def test_hill_climbing_happens_at_high_temp(self):
        """Metropolis: at high temperature, worse states are accepted."""
        engine = SimulatedAnnealing(
            AnnealingParams(initial_temp=1e6, cooling=0.5, iterations_per_module=1,
                            max_rounds=1),
            seed=3,
        )
        rng = random.Random(3)
        _, stats = engine.optimize(
            3.0,  # start AT the optimum: any move is uphill
            quadratic_cost,
            lambda x, t: gaussian_step(x, t, rng),
            inner_iterations=40,
        )
        assert stats.acceptances > 30  # nearly everything accepted

    def test_empty_stats_defaults(self):
        stats = AnnealingStats()
        assert stats.acceptance_ratio == 0.0
        assert math.isnan(stats.best_cost)
