"""Figure 8 — the enhanced two-stage placement at beta = 30.

Paper: 173.25 mm^2 (77 cells), FTI 0.8052 — +534% FTI for +22.2% area
over the min-area placement. This bench runs both stages once and
reports the same comparison.
"""

from repro.experiments.fig8 import run_enhanced_experiment
from repro.placement.annealer import AnnealingParams
from repro.util.tables import format_table
from repro.viz.ascii_art import render_fti_map, render_placement


def test_fig8_enhanced_placement(benchmark, report):
    experiment = benchmark.pedantic(
        run_enhanced_experiment,
        kwargs={"beta": 30.0, "seed": 7, "stage1_params": AnnealingParams.balanced()},
        rounds=1,
        iterations=1,
    )
    result = experiment.result

    # Shape: fault-aware refinement buys substantial FTI at modest area.
    assert result.fti > result.fti_stage1.fti
    assert result.fti >= 0.5
    assert result.area_increase_pct <= 40.0
    result.placement.validate()

    lines = [
        format_table(("metric", "paper", "measured"), experiment.rows()),
        "",
        "measured enhanced placement (merged view):",
        render_placement(result.placement, legend=False),
        "",
        "C-coveredness map:",
        render_fti_map(result.fti_stage2),
    ]
    report("Figure 8: enhanced two-stage placement", "\n".join(lines))
