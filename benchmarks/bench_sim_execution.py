"""End-to-end execution benchmark: the droplet-level simulator.

Not a paper artifact per se, but the substrate proof: the placed,
scheduled PCR assay executes on the simulated electrowetting array,
both nominally and through a mid-assay fault with on-line partial
reconfiguration (the scenario Sections 5.1/6.2 motivate).
"""

import pytest

from repro.sim.engine import BiochipSimulator
from repro.util.tables import format_table

_results: dict[str, tuple[float, int]] = {}


@pytest.fixture(scope="module")
def setup():
    from repro.experiments.pcr import pcr_case_study
    from repro.placement.annealer import AnnealingParams
    from repro.placement.sa_placer import SimulatedAnnealingPlacer

    study = pcr_case_study()
    placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
    placement = placer.place(study.schedule, study.binding).placement
    return study, placement


@pytest.mark.parametrize("scenario", ["nominal", "faulted"])
def test_sim_execution(benchmark, report, setup, scenario):
    study, placement = setup

    def run():
        sim = BiochipSimulator(study.graph, study.schedule, study.binding, placement)
        faults = []
        if scenario == "faulted":
            faults = [(8.0, sim.module_cell("M6"))]
        return sim.run(faults=faults)

    result = benchmark.pedantic(run, rounds=3, iterations=1)

    assert result.completed
    assert len(result.product.reagents) == 8
    if scenario == "faulted":
        assert result.relocations and result.delay_s > 0
    _results[scenario] = (result.delay_s, result.total_transport_cells)

    if len(_results) == 2:
        report(
            "Simulator: PCR execution with on-line fault recovery",
            format_table(
                ("scenario", "recovery delay (s)", "transport (cell-moves)"),
                [(k, f"{d:g}", t) for k, (d, t) in sorted(_results.items())],
            ),
        )
