"""Event-driven simulation core: the acceptance gate.

The simulator's replay loop was rebuilt on a heap-ordered discrete-event
engine (``repro.sim.eventengine``); the fixed-timestep driver stays as
the bit-identical reference. This benchmark is the proof obligation of
that rewrite:

1. **Parity.** On every bundled assay — nominal and through a +/-10%
   mid-assay fault grid — the two engines must produce bit-identical
   :class:`SimulationReport` observations (events, realized intervals,
   transport accounting).
2. **Replay speedup.** Aggregated over the grid, and specifically on
   the paper schedule (tree16), the event engine must beat the stepped
   reference by >= the speedup bar (4x; relaxed to 2x under
   ``REPRO_BENCH_FAST=1`` for noisy shared runners).
3. **Sweep speedup.** The simulation work of a Monte-Carlo recovery
   grid — checkpoint + resume per scenario — must clear the same bar:
   the event engine checkpoints by log truncation where the stepped
   reference replays.

Results are written machine-readably to ``BENCH_sim.json``; CI runs
this file under ``REPRO_BENCH_FAST=1`` and uploads the JSON artifact.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.assay.catalog import BUNDLED_ASSAYS, build_assay
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.recovery.sweep import MonteCarloRecoverySweep
from repro.sim.engine import BiochipSimulator
from repro.synthesis.flow import SynthesisFlow
from repro.util.errors import SimulationError
from repro.util.tables import format_table

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")
#: Parity is a correctness gate — every bundled assay, in both modes.
ASSAYS = tuple(sorted(BUNDLED_ASSAYS))
REPS = 1 if FAST else 5
SPEEDUP_BAR = 2.0 if FAST else 4.0
SEED = 7
#: Fault arrivals: mid-assay +/- 10% of the nominal makespan.
FAULT_FRACTIONS = (0.45, 0.55)

_synth_cache: dict[str, object] = {}
_assay_rows: list[tuple] = []
_results: dict[str, dict] = {}


def _synthesized(assay: str):
    if assay not in _synth_cache:
        graph, explicit = build_assay(assay)
        flow = SynthesisFlow(
            placer=SimulatedAnnealingPlacer(
                params=AnnealingParams.fast(), seed=SEED
            )
        )
        _synth_cache[assay] = flow.run(graph, explicit_binding=explicit)
    return _synth_cache[assay]


def _simulator(assay: str, engine: str) -> BiochipSimulator:
    result = _synthesized(assay)
    return BiochipSimulator(
        result.graph,
        result.schedule,
        result.binding,
        result.placement_result.placement,
        strict=False,
        engine=engine,
    )


def _scenarios(sim: BiochipSimulator) -> list[tuple[str, list]]:
    """Nominal plus one aimed fault per arrival fraction."""
    ops = sorted(pm.op_id for pm in sim.placement)
    makespan = sim.schedule.makespan
    scenarios: list[tuple[str, list]] = [("nominal", [])]
    for i, fraction in enumerate(FAULT_FRACTIONS):
        op_id = ops[(2 * i + 1) % len(ops)]
        scenarios.append(
            (
                f"fault@{fraction:.0%}",
                [(fraction * makespan, sim.module_cell(op_id))],
            )
        )
    return scenarios


def _comparable(report) -> tuple:
    """Everything a report observes, in a comparable shape."""
    return (
        report.to_dict(),
        report.events,
        [(r.op_id, r.old.footprint, r.new.footprint) for r in report.relocations],
        report.product.reagents if report.product is not None else None,
    )


def _time_runs(sim: BiochipSimulator, faults) -> tuple[float, object]:
    """Best-of-REPS wall time after one untimed warm-up run."""
    reference = sim.run(faults=faults)
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        report = sim.run(faults=faults)
        best = min(best, time.perf_counter() - t0)
        assert _comparable(report) == _comparable(reference)
    return best, reference


@pytest.mark.parametrize("assay", ASSAYS)
def test_engine_parity_and_speedup(assay):
    """Bit-identical reports on each scenario; record both engines' time."""
    event_sim = _simulator(assay, "event")
    stepped_sim = _simulator(assay, "stepped")
    per_assay = {"scenarios": {}}
    total_event = total_stepped = 0.0
    events_processed = 0
    for name, faults in _scenarios(event_sim):
        stepped_s, stepped_report = _time_runs(stepped_sim, faults)
        event_s, event_report = _time_runs(event_sim, faults)
        assert _comparable(event_report) == _comparable(stepped_report), (
            f"{assay}/{name}: engines diverged"
        )
        total_event += event_s
        total_stepped += stepped_s
        events_processed += event_sim._event_stats["processed"]
        per_assay["scenarios"][name] = {
            "completed": event_report.completed,
            "event_ms": event_s * 1000,
            "stepped_ms": stepped_s * 1000,
            "speedup": stepped_s / event_s,
            "queue_events": event_sim._event_stats["processed"],
            "log_events": len(event_report.events),
        }
        if assay == "pcr" and name == "nominal":
            assert event_report.completed
            assert len(event_report.product.reagents) == 8
    speedup = total_stepped / total_event
    per_assay.update(
        event_ms=total_event * 1000,
        stepped_ms=total_stepped * 1000,
        speedup=speedup,
        events_per_s=events_processed / total_event,
    )
    _results[assay] = per_assay
    _assay_rows.append(
        (
            assay,
            len(per_assay["scenarios"]),
            f"{total_stepped * 1000:.2f}",
            f"{total_event * 1000:.2f}",
            f"{speedup:.1f}x",
            f"{events_processed / total_event:,.0f}",
        )
    )


def test_replay_speedup_bar(report, bench_json):
    if len(_results) < len(ASSAYS):
        pytest.skip("needs the per-assay timings from the full module run")
    total_event = sum(r["event_ms"] for r in _results.values())
    total_stepped = sum(r["stepped_ms"] for r in _results.values())
    aggregate = total_stepped / total_event
    paper = _results["tree16"]["speedup"]
    table = format_table(
        ("assay", "scenarios", "stepped ms", "event ms", "speedup", "events/s"),
        sorted(_assay_rows),
    )
    report(
        "Event-driven vs stepped simulation (parity asserted per scenario)",
        f"{table}\n\naggregate {aggregate:.1f}x, paper schedule (tree16) "
        f"{paper:.1f}x (bar {SPEEDUP_BAR}x, fast={FAST})",
    )
    bench_json(
        "sim_engine_comparison",
        {
            "fast_mode": FAST,
            "reps": REPS,
            "fault_fractions": list(FAULT_FRACTIONS),
            "assays": _results,
            "aggregate_speedup": aggregate,
            "paper_schedule_speedup": paper,
            "speedup_bar": SPEEDUP_BAR,
        },
        default="BENCH_sim.json",
    )
    # The hard bar applies to the paper schedule; the all-assay
    # aggregate (dominated by tiny arrays where fixed replay overhead
    # caps the ratio) gets a softer sanity floor.
    assert paper >= SPEEDUP_BAR, (
        f"tree16 replay speedup {paper:.2f}x below the {SPEEDUP_BAR}x bar"
    )
    floor = SPEEDUP_BAR / 2
    assert aggregate >= floor, (
        f"aggregate replay speedup {aggregate:.2f}x below the {floor}x floor"
    )


def _checkpoint_grid(sim: BiochipSimulator) -> list[tuple[list, float]]:
    """(fault list, checkpoint instant) pairs that checkpoint cleanly."""
    ops = sorted(pm.op_id for pm in sim.placement)
    makespan = sim.schedule.makespan
    grid = []
    for i, fraction in enumerate((0.4, 0.5, 0.6)):
        for k in range(len(ops)):
            op_id = ops[(i + k) % len(ops)]
            faults = [(0.5 * fraction * makespan, sim.module_cell(op_id))]
            try:
                sim.checkpoint(fraction * makespan, faults=faults)
            except SimulationError:
                continue  # unrecoverable aim; try the next module
            grid.append((faults, fraction * makespan))
            break
    return grid


def test_monte_carlo_sweep_sim_speedup(report, bench_json):
    """The sim work of a recovery sweep — checkpoint + resume per
    scenario — under both engines, plus the end-to-end sweep walls."""
    assays = ("pcr",) if FAST else ("pcr", "dilution", "ivd")
    rows = []
    total_event = total_stepped = 0.0
    per_assay: dict[str, dict] = {}
    for assay in assays:
        event_sim = _simulator(assay, "event")
        stepped_sim = _simulator(assay, "stepped")
        grid = _checkpoint_grid(event_sim)
        assert grid, f"{assay}: no recoverable checkpoint scenario found"

        def sim_work(sim):
            for faults, time_s in grid:
                cp = sim.checkpoint(time_s, faults=faults)
                sim.resume(cp)

        sim_work(event_sim)  # warm both paths once, untimed
        sim_work(stepped_sim)
        best_event = best_stepped = float("inf")
        for _ in range(REPS):
            t0 = time.perf_counter()
            sim_work(stepped_sim)
            best_stepped = min(best_stepped, time.perf_counter() - t0)
            t0 = time.perf_counter()
            sim_work(event_sim)
            best_event = min(best_event, time.perf_counter() - t0)
        total_event += best_event
        total_stepped += best_stepped
        rows.append(
            (
                assay,
                len(grid),
                f"{best_stepped * 1000:.2f}",
                f"{best_event * 1000:.2f}",
                f"{best_stepped / best_event:.1f}x",
            )
        )
        per_assay[assay] = {
            "scenarios": len(grid),
            "event_ms": best_event * 1000,
            "stepped_ms": best_stepped * 1000,
            "speedup": best_stepped / best_event,
        }
    speedup = total_stepped / total_event

    sweep_walls = {}
    for engine in ("event", "stepped"):
        sweep = MonteCarloRecoverySweep(
            assays=("pcr",),
            time_fractions=(0.5,),
            targets=("pending-module",),
            annealing=AnnealingParams.fast(),
            recovery_annealing=AnnealingParams.fast(),
            seed=SEED,
            sim_engine=engine,
        )
        t0 = time.perf_counter()
        sweep_report = sweep.run()
        sweep_walls[engine] = time.perf_counter() - t0
        assert sweep_report.records

    table = format_table(
        ("assay", "scenarios", "stepped ms", "event ms", "speedup"), rows
    )
    report(
        "Monte-Carlo recovery sweep: checkpoint+resume sim work",
        f"{table}\n\naggregate {speedup:.1f}x (bar {SPEEDUP_BAR}x); "
        f"end-to-end sweep wall: stepped {sweep_walls['stepped']:.2f}s, "
        f"event {sweep_walls['event']:.2f}s (fast={FAST})",
    )
    bench_json(
        "sweep_sim",
        {
            "fast_mode": FAST,
            "reps": REPS,
            "assays": per_assay,
            "aggregate_speedup": speedup,
            "speedup_bar": SPEEDUP_BAR,
            "sweep_wall_s": sweep_walls,
        },
        default="BENCH_sim.json",
    )
    assert speedup >= SPEEDUP_BAR, (
        f"sweep sim speedup {speedup:.2f}x below the {SPEEDUP_BAR}x bar"
    )
