"""Scaling study — the placer beyond the paper's 7-module case study.

The paper's conclusion anticipates steadily growing assay complexity;
this bench places balanced mixing trees of 7, 15, and 31 operations and
reports makespan, area vs the concurrency lower bound, FTI, and
runtime scaling.
"""

from repro.experiments.scaling import run_scaling_study


def test_scaling_study(benchmark, report):
    study = benchmark.pedantic(
        run_scaling_study, kwargs={"seed": 7}, rounds=1, iterations=1
    )

    rows = study.rows
    assert [r.leaves for r in rows] == [4, 8, 16]
    # Sanity on the shape: more operations never shrink the schedule or
    # the placed area; the area always covers the demand lower bound.
    makespans = [r.makespan_s for r in rows]
    assert makespans == sorted(makespans)
    for r in rows:
        assert r.area_cells >= r.peak_demand_cells

    report("Scaling study (balanced mix trees)", study.table_text())
