"""Ablation A-transport — transport-aware placement (extension).

The paper's successors add droplet-transport distance to the placement
objective; our TransportAwareCost implements that extension. This
ablation compares area-only against transport-weighted placement on
PCR: the weighted run should cut the total producer->consumer haul at
little or no area cost.
"""

import pytest

from repro.assay.protocols.pcr import build_pcr_mixing_graph
from repro.experiments.pcr import pcr_case_study
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.placement.transport import TransportAwareCost
from repro.util.tables import format_table

_results: dict[str, tuple[int, int]] = {}


@pytest.mark.parametrize("variant", ["area-only", "transport-aware"])
def test_transport_aware_placement(benchmark, report, variant):
    study = pcr_case_study()
    graph = build_pcr_mixing_graph()
    meter = TransportAwareCost(graph)  # used only to measure distance
    cost = None
    if variant == "transport-aware":
        cost = TransportAwareCost(graph, transport_weight=0.8)

    def place():
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), cost=cost, seed=31
        )
        return placer.place(study.schedule, study.binding)

    result = benchmark.pedantic(place, rounds=1, iterations=1)
    result.placement.validate()
    _results[variant] = (
        result.area_cells,
        meter.transport_distance(result.placement),
    )

    if len(_results) == 2:
        assert _results["transport-aware"][1] <= _results["area-only"][1]
        report(
            "Ablation A-transport: transport-aware placement",
            format_table(
                ("variant", "area (cells)", "transport (cells)"),
                [(k, a, t) for k, (a, t) in sorted(_results.items())],
            ),
        )
