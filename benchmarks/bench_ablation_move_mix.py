"""Ablation A1 — the single-move vs pair-interchange mix ``p``.

The paper assigns probability p to single-module displacement and 1-p
to pair interchange, with the effective ratio "determined
experimentally" (Section 4(b)). This ablation quantifies that choice:
pure-swap (p=0), the default 0.8, and pure-displacement (p=1).
"""

import pytest

from repro.experiments.pcr import pcr_case_study
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.util.tables import format_table

_results: dict[float, int] = {}


@pytest.mark.parametrize("p_single", [0.2, 0.8, 1.0])
def test_move_mix(benchmark, report, p_single):
    study = pcr_case_study()

    def place():
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(), p_single=p_single, seed=13
        )
        return placer.place(study.schedule, study.binding)

    result = benchmark.pedantic(place, rounds=1, iterations=1)
    result.placement.validate()
    _results[p_single] = result.area_cells

    if len(_results) == 3:
        report(
            "Ablation A1: move mix p (single vs pair moves)",
            format_table(
                ("p_single", "area (cells)"),
                [(f"{p:g}", a) for p, a in sorted(_results.items())],
            )
            + "\n(paper default direction: mostly single-module displacement)",
        )
