"""Ablation A3 — cooling rate alpha (paper uses 0.9).

Faster cooling saves proposals but risks freezing into worse placements;
slower cooling spends more evaluations. This ablation sweeps alpha at a
fixed per-round budget.
"""

import pytest

from repro.experiments.pcr import pcr_case_study
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.util.tables import format_table

_results: dict[float, tuple[int, int]] = {}


@pytest.mark.parametrize("alpha", [0.7, 0.8, 0.9])
def test_cooling_rate(benchmark, report, alpha):
    study = pcr_case_study()
    params = AnnealingParams(
        initial_temp=500.0,
        cooling=alpha,
        iterations_per_module=40,
        freeze_rounds=2,
        window_gamma=0.37,
    )

    def place():
        placer = SimulatedAnnealingPlacer(params=params, seed=19)
        return placer.place(study.schedule, study.binding)

    result = benchmark.pedantic(place, rounds=1, iterations=1)
    result.placement.validate()
    _results[alpha] = (result.area_cells, result.stats.evaluations)

    if len(_results) == 3:
        report(
            "Ablation A3: cooling rate alpha",
            format_table(
                ("alpha", "area (cells)", "evaluations"),
                [(f"{a:g}", c, e) for a, (c, e) in sorted(_results.items())],
            )
            + "\n(paper: alpha = 0.9)",
        )
