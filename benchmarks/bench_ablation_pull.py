"""Ablation A-pull — the corner-pull tiebreaker in the area cost.

The paper's literal cost is the bounding-array area plus the overlap
penalty; our AreaCost adds a sub-cell-scale corner-pull term to give
interior modules a gradient (see repro.placement.cost). This ablation
quantifies the difference on the PCR case study.
"""

import pytest

from repro.experiments.pcr import pcr_case_study
from repro.placement.annealer import AnnealingParams
from repro.placement.cost import AreaCost
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.util.tables import format_table

_results: dict[str, int] = {}


@pytest.mark.parametrize("variant", ["pull-on", "pull-off"])
def test_corner_pull(benchmark, report, variant):
    study = pcr_case_study()
    weight = 0.05 if variant == "pull-on" else 0.0

    def place():
        placer = SimulatedAnnealingPlacer(
            params=AnnealingParams.fast(),
            cost=AreaCost(pull_weight=weight),
            seed=29,
        )
        return placer.place(study.schedule, study.binding)

    result = benchmark.pedantic(place, rounds=1, iterations=1)
    result.placement.validate()
    _results[variant] = result.area_cells

    if len(_results) == 2:
        report(
            "Ablation A-pull: corner-pull tiebreaker",
            format_table(
                ("variant", "area (cells)"),
                sorted(_results.items()),
            )
            + "\n(pull-off is the paper's literal cost function)",
        )
