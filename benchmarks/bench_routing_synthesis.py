"""Routing-synthesis benchmark: concurrent plan vs serial per-droplet baseline.

Not a paper artifact — the paper's flow stops at geometry-level
synthesis — but the proof for the new ``repro.routing`` stage: routing
every epoch's nets *concurrently* (prioritized time-expanded A* with
wait/detour negotiation plus compaction) must never be slower than the
serial baseline that moves one droplet at a time, and the verifier must
prove every plan conflict-free. Also reports raw router throughput
(nets routed per second of synthesis time).
"""

import time

import pytest

from repro.assay.protocols.dilution import build_serial_dilution_graph
from repro.assay.protocols.glucose import build_multiplexed_diagnostics_graph
from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.assay.synthetic import build_mix_tree
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.routing import PrioritizedRouter, RoutingSynthesizer, TimeGrid
from repro.synthesis.flow import SynthesisFlow
from repro.util.tables import format_table

ASSAYS = {
    "pcr": lambda: (build_pcr_mixing_graph(), PCR_BINDING),
    "glucose": lambda: (build_multiplexed_diagnostics_graph(2, 2), None),
    "dilution": lambda: (build_serial_dilution_graph(4), None),
    "synthetic": lambda: (build_mix_tree(8), None),
}

_rows: dict[str, tuple] = {}


def serial_makespan(plan) -> int:
    """Baseline: one droplet at a time. Each net is routed alone against
    the epoch's static obstacles (no in-flight traffic, so no waits),
    and the nets run back to back — the makespan is the sum of the solo
    latencies, exactly what the simulator's per-droplet A* fallback
    realizes."""
    router = PrioritizedRouter()
    total = 0
    for epoch in plan.epochs:
        for rn in epoch.nets:
            grid = TimeGrid(plan.width, plan.height)
            grid.add_faulty(epoch.faulty)
            for rect, owner in epoch.modules:
                grid.add_module(rect, owner)
            for op_id, rect in epoch.regions:
                grid.add_region(op_id, rect)
            grid.add_parked(epoch.parked)
            solo = router.route_one(
                rn.net, grid, router.default_horizon(grid, [rn.net])
            )
            total += solo.latency
    return total


@pytest.mark.parametrize("assay", sorted(ASSAYS))
def test_routing_synthesis(benchmark, report, assay):
    graph, binding = ASSAYS[assay]()
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2),
        max_concurrent_ops=3,
        route=False,  # placement timed separately from routing below
    )
    placed = flow.run(graph, explicit_binding=binding)
    synthesizer = RoutingSynthesizer()

    def run():
        return synthesizer.synthesize(
            placed.graph, placed.schedule, placed.placement_result.placement
        )

    t0 = time.perf_counter()
    plan = benchmark.pedantic(run, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - t0) / 3

    plan.verify()  # every benchmarked plan must prove conflict-free
    assert plan.routability == 1.0, f"{assay}: unrouted nets {plan.failed}"

    serial = serial_makespan(plan)
    routed = plan.makespan_steps
    # The acceptance bar: concurrent routing never loses to the serial
    # per-droplet baseline.
    assert routed <= serial, f"{assay}: routed {routed} > serial {serial}"

    throughput = plan.routed_count / elapsed if elapsed > 0 else float("inf")
    _rows[assay] = (
        assay,
        plan.routed_count,
        len(plan.epochs),
        routed,
        serial,
        f"{(1 - routed / serial) * 100:.0f}%" if serial else "-",
        f"{throughput:.0f}",
    )

    if len(_rows) == len(ASSAYS):
        report(
            "Routing synthesis: concurrent plan vs serial per-droplet baseline",
            format_table(
                ("assay", "nets", "epochs", "routed steps", "serial steps",
                 "reduction", "nets/s"),
                [_rows[k] for k in sorted(_rows)],
            ),
        )
