"""Closed-loop fault tolerance under realistic fault processes.

Not a paper artifact — the acceptance gate of the closed-loop layer
(:mod:`repro.recovery.closedloop` + :mod:`repro.fault.models`):

1. **Closed loop tracks the oracle.** For every (assay x fault model)
   scenario, detection-driven recovery with a lossy sensor must land
   the assay whenever the perfect-knowledge oracle does, and must not
   need more than **one extra rung** of the graceful-degradation
   ladder to do it.
2. **False alarms are harmless.** A fault-free chip probed by a jumpy
   sensor (false positives only) must always complete: a phantom
   reading is either dismissed by the confirmation re-probe, or — when
   the re-probe also lies — recovered *around* (the plan avoids one
   healthy cell). Neither path may ever end in an abort.
3. **Detection latency is bounded and measured.** Closed-loop
   detections arrive after the true fault (sensing is causal); the
   per-model latency distributions are recorded for the artifact.

Results are written machine-readably to ``BENCH_faultmodel.json``
(detection-latency distributions, closed-loop vs oracle success,
ladder-rung frequencies); CI runs this file under
``REPRO_BENCH_FAST=1`` and uploads the JSON as an artifact.
"""

from __future__ import annotations

import os
import statistics

import pytest

from repro.assay.catalog import BUNDLED_ASSAYS, build_assay
from repro.fault.models import FAULT_MODELS
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.recovery import (
    RECOVERY_RUNGS,
    ClosedLoopController,
    OnlineRecoveryEngine,
)
from repro.recovery.engine import pick_fault_cell
from repro.recovery.sweep import scenario_events
from repro.synthesis.flow import SynthesisFlow
from repro.testing import CapacitiveSensor
from repro.util.rng import ensure_rng
from repro.util.tables import format_table

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")
ASSAYS = ("pcr", "dilution") if FAST else tuple(sorted(BUNDLED_ASSAYS))
MODELS = tuple(sorted(FAULT_MODELS))
FAULT_FRACTION = 0.5
SEED = 7
TARGET_SEED = 3
SENSOR_FPR = 0.02
SENSOR_FNR = 0.05
FALSE_ALARM_FPR = 0.2
FALSE_ALARM_SEEDS = (1, 9, 33) if FAST else (1, 9, 33, 57, 101)

#: Rung name -> ladder depth; "abort" sits one past the last real rung
#: so "within one rung" naturally covers oracle-succeeds/closed-aborts.
_RUNG_DEPTH = {rung: i for i, rung in enumerate(RECOVERY_RUNGS)}
_RUNG_DEPTH["abort"] = len(RECOVERY_RUNGS)

_synth_cache: dict[str, object] = {}
_scenarios: list[dict] = []
_scenario_rows: list[tuple] = []
_false_alarm_rows: list[dict] = []


def _routed(assay: str):
    if assay not in _synth_cache:
        graph, binding = build_assay(assay)
        flow = SynthesisFlow(
            placer=SimulatedAnnealingPlacer(
                params=AnnealingParams.fast(), seed=SEED
            ),
            route=True,
        )
        _synth_cache[assay] = flow.run(graph, explicit_binding=binding)
    return _synth_cache[assay]


def _engine() -> OnlineRecoveryEngine:
    return OnlineRecoveryEngine(annealing=AnnealingParams.fast())


def _depth(rung: str | None) -> int | None:
    return None if rung is None else _RUNG_DEPTH[rung]


def _latency_stats(latencies: list[float]) -> dict:
    if not latencies:
        return {"count": 0}
    return {
        "count": len(latencies),
        "min_s": min(latencies),
        "median_s": statistics.median(latencies),
        "mean_s": statistics.fmean(latencies),
        "max_s": max(latencies),
    }


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("assay", ASSAYS)
def test_closed_loop_tracks_oracle(assay, model):
    """Same fault timeline, two observers: the oracle (ground truth at
    arrival) and the closed loop (lossy probes). The closed loop must
    complete whenever the oracle does, within one ladder rung."""
    result = _routed(assay)
    engine = _engine()
    fault_time = FAULT_FRACTION * result.makespan
    checkpoint = engine.checkpoint_of(result, fault_time)
    cell = pick_fault_cell(result, checkpoint, "pending-module", rng=TARGET_SEED)
    width, height = result.placement_result.placement.array_dims()
    events = scenario_events(
        model, cell, fault_time, result.makespan, width, height,
        ensure_rng(SEED),
    )

    oracle = ClosedLoopController(engine=_engine()).run(
        result, events, seed=SEED, mode="oracle"
    )
    closed = ClosedLoopController(
        engine=_engine(),
        sensor=CapacitiveSensor(
            false_positive_rate=SENSOR_FPR, false_negative_rate=SENSOR_FNR
        ),
    ).run(result, events, seed=SEED, mode="closed-loop")

    latencies = list(closed.detection_latencies)
    _scenarios.append(
        {
            "assay": assay,
            "model": model,
            "fault_cell": [cell.x, cell.y],
            "fault_time_s": fault_time,
            "oracle_completed": oracle.completed,
            "closed_completed": closed.completed,
            "oracle_rung": oracle.final_rung,
            "closed_rung": closed.final_rung,
            "detection_latencies_s": latencies,
            "false_alarms": len(closed.false_alarms),
            "watchdog_rounds": closed.watchdog_rounds,
            "makespan_penalty_s": closed.makespan_penalty_s,
        }
    )
    _scenario_rows.append(
        (
            assay,
            model,
            oracle.final_rung or "-",
            closed.final_rung or "-",
            "yes" if closed.completed else f"no ({closed.reason})",
            f"{max(latencies):.3g}" if latencies else "-",
        )
    )

    # Sensing is causal: no detection precedes the fault it observes.
    assert all(lat >= 0 for lat in latencies)
    if oracle.completed:
        assert closed.completed, (
            f"{assay}/{model}: oracle recovered but the closed loop "
            f"did not ({closed.reason})"
        )
        od, cd = _depth(oracle.final_rung), _depth(closed.final_rung)
        if od is not None or cd is not None:
            assert abs((cd or 0) - (od or 0)) <= 1, (
                f"{assay}/{model}: closed-loop rung {closed.final_rung!r} "
                f"is more than one step from oracle {oracle.final_rung!r}"
            )


@pytest.mark.parametrize("seed", FALSE_ALARM_SEEDS)
def test_false_alarms_never_abort_fault_free_runs(seed):
    """A healthy chip with a jumpy sensor: a phantom positive is
    dismissed by the re-probe or recovered around — never an abort."""
    result = _routed(ASSAYS[0])
    controller = ClosedLoopController(
        engine=_engine(),
        sensor=CapacitiveSensor(false_positive_rate=FALSE_ALARM_FPR),
    )
    outcome = controller.run(result, (), seed=seed)
    _false_alarm_rows.append(
        {
            "seed": seed,
            "completed": outcome.completed,
            "aborted": outcome.aborted,
            "dismissed_alarms": len(outcome.false_alarms),
            "phantom_recoveries": len(outcome.recoveries),
            "makespan_penalty_s": outcome.makespan_penalty_s,
        }
    )
    assert outcome.completed and not outcome.aborted, outcome.reason
    assert all(d.dismissed for d in outcome.false_alarms)
    # No real fault existed, so any recovery here chased a phantom;
    # it must still leave the replay complete.
    for recovery in outcome.recoveries:
        assert recovery.recovered


def test_fault_model_report(report, bench_json):
    """Aggregate the grid into the artifact + terminal report."""
    expected = len(ASSAYS) * len(MODELS)
    if len(_scenarios) < expected:
        pytest.skip("needs the scenario outcomes from the full module run")

    oracle_ok = sum(1 for s in _scenarios if s["oracle_completed"])
    closed_ok = sum(1 for s in _scenarios if s["closed_completed"])
    rung_freq: dict[str, int] = {}
    latency_by_model: dict[str, list[float]] = {m: [] for m in MODELS}
    for s in _scenarios:
        if s["closed_rung"] is not None:
            rung_freq[s["closed_rung"]] = rung_freq.get(s["closed_rung"], 0) + 1
        latency_by_model[s["model"]].extend(s["detection_latencies_s"])

    table = format_table(
        ("assay", "model", "oracle rung", "closed rung", "closed ok",
         "worst latency s"),
        _scenario_rows,
    )
    dismissed = sum(r["dismissed_alarms"] for r in _false_alarm_rows)
    phantoms = sum(r["phantom_recoveries"] for r in _false_alarm_rows)
    report(
        "Closed-loop recovery across fault models",
        f"{table}\n\nclosed-loop {closed_ok}/{len(_scenarios)} vs oracle "
        f"{oracle_ok}/{len(_scenarios)}; fault-free runs: "
        f"{len(_false_alarm_rows)}, {dismissed} alarm(s) dismissed, "
        f"{phantoms} recovered around, 0 aborted (fast={FAST})",
    )
    bench_json(
        "fault_model_grid",
        {
            "fast_mode": FAST,
            "assays": list(ASSAYS),
            "models": list(MODELS),
            "sensor": {
                "false_positive_rate": SENSOR_FPR,
                "false_negative_rate": SENSOR_FNR,
            },
            "scenarios": _scenarios,
            "closed_loop_completed": closed_ok,
            "oracle_completed": oracle_ok,
            "scenario_count": len(_scenarios),
            "ladder_rung_frequencies": rung_freq,
            "detection_latency_s": {
                model: _latency_stats(lats)
                for model, lats in latency_by_model.items()
            },
        },
        default="BENCH_faultmodel.json",
    )
    bench_json(
        "false_alarm_robustness",
        {
            "fast_mode": FAST,
            "assay": ASSAYS[0],
            "sensor_fpr": FALSE_ALARM_FPR,
            "runs": _false_alarm_rows,
            "aborted_runs": sum(1 for r in _false_alarm_rows if r["aborted"]),
        },
        default="BENCH_faultmodel.json",
    )
    assert closed_ok >= oracle_ok, (
        f"closed loop ({closed_ok}) completed fewer scenarios than the "
        f"oracle ({oracle_ok})"
    )
    assert not any(r["aborted"] for r in _false_alarm_rows)
