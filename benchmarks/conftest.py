"""Benchmark harness plumbing.

Each benchmark regenerates one table/figure of the paper. Regenerated
rows are registered through the ``report`` fixture and printed in the
terminal summary, so ``pytest benchmarks/ --benchmark-only`` shows both
the timings and the paper-vs-measured tables without needing ``-s``.
"""

from __future__ import annotations

import pytest

_SECTIONS: list[tuple[str, str]] = []


@pytest.fixture
def report():
    """Register a titled text block for the end-of-run report."""

    def add(title: str, text: str) -> None:
        _SECTIONS.append((title, text))

    return add


def pytest_terminal_summary(terminalreporter):
    if not _SECTIONS:
        return
    terminalreporter.write_sep("=", "paper-vs-measured report")
    for title, text in _SECTIONS:
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _SECTIONS.clear()
