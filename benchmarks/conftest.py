"""Benchmark harness plumbing.

Each benchmark regenerates one table/figure of the paper. Regenerated
rows are registered through the ``report`` fixture and printed in the
terminal summary, so ``pytest benchmarks/ --benchmark-only`` shows both
the timings and the paper-vs-measured tables without needing ``-s``.

The harness is wired to the staged pipeline: ``make_portfolio_spec``
builds a ready :class:`repro.pipeline.PortfolioSpec` for any assay of
the shared :mod:`repro.assay.catalog`, so portfolio/batch benchmarks
use the same registry and construction path as the CLI.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.assay.catalog import build_assay
from repro.placement.annealer import AnnealingParams

_SECTIONS: list[tuple[str, str]] = []

#: Machine-readable benchmark results land here (CI uploads the file as
#: an artifact); override with REPRO_BENCH_JSON.
BENCH_JSON_DEFAULT = "BENCH_placement.json"


def write_bench_json(section: str, payload: dict, default: str = BENCH_JSON_DEFAULT) -> Path:
    """Merge *payload* under *section* into the benchmark JSON file.

    Read-modify-write so several benchmark modules (throughput, area
    parity, portfolio) can contribute sections to one artifact.
    *default* names the artifact a benchmark family writes when
    ``REPRO_BENCH_JSON`` is unset (placement benches share one file,
    the routing-engine bench writes ``BENCH_routing.json``).
    """
    path = Path(os.environ.get("REPRO_BENCH_JSON", default))
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            data = {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def bench_json():
    """Fixture handle on :func:`write_bench_json`."""
    return write_bench_json


@pytest.fixture
def make_portfolio_spec():
    """Factory: a pipeline PortfolioSpec for a named bundled assay."""
    from repro.pipeline import PortfolioSpec

    def make(assay: str, *, route: bool = False, fast: bool = True, **kwargs):
        graph, binding = build_assay(assay)
        return PortfolioSpec(
            graph=graph,
            explicit_binding=binding,
            annealing=AnnealingParams.fast() if fast else AnnealingParams.balanced(),
            route=route,
            **kwargs,
        )

    return make


@pytest.fixture
def report():
    """Register a titled text block for the end-of-run report."""

    def add(title: str, text: str) -> None:
        _SECTIONS.append((title, text))

    return add


def pytest_terminal_summary(terminalreporter):
    if not _SECTIONS:
        return
    terminalreporter.write_sep("=", "paper-vs-measured report")
    for title, text in _SECTIONS:
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _SECTIONS.clear()
