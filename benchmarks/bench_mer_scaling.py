"""MER enumeration scaling — staircase sweep vs quartic brute force.

The reason the paper adopts the staircase method (Section 5.3): MER
enumeration runs inside every FTI query, so its scaling sets the cost
of fault-aware placement. On small arrays the two are comparable; by
24x24 the staircase sweep wins by orders of magnitude. The obstacle
pattern is a fixed-density pseudo-random scatter so both algorithms see
identical inputs.
"""

import random

import pytest

from repro.fault.mer import (
    brute_force_maximal_empty_rectangles,
    find_maximal_empty_rectangles,
)
from repro.grid.occupancy import OccupancyGrid

_ALGORITHMS = {
    "staircase": find_maximal_empty_rectangles,
    "bruteforce": brute_force_maximal_empty_rectangles,
}


def scatter_grid(side: int, density: float = 0.15, seed: int = 5) -> OccupancyGrid:
    rng = random.Random(seed)
    grid = OccupancyGrid(side, side)
    for y in range(1, side + 1):
        for x in range(1, side + 1):
            if rng.random() < density:
                grid.set((x, y))
    return grid


@pytest.mark.parametrize("side", [12, 24])
@pytest.mark.parametrize("algorithm", sorted(_ALGORITHMS))
def test_mer_scaling(benchmark, side, algorithm):
    grid = scatter_grid(side)
    fn = _ALGORITHMS[algorithm]

    result = benchmark(fn, grid)

    # Cross-check correctness on every size we time.
    reference = _ALGORITHMS["bruteforce"](grid)
    assert set(result) == set(reference)
