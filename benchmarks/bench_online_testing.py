"""On-line testing substrate benchmark (paper refs [13]/[14]).

Times the full detect-and-localize campaign the paper's fault model
assumes: plan concurrent test walks over the free cells of a running
placement, execute them against an array with one injected fault, and
pinpoint the faulty cell by bisection.
"""

from repro.grid.array import MicrofluidicArray
from repro.testing.online import OnlineTester
from repro.util.tables import format_table


def test_online_testing_campaign(benchmark, report):
    from repro.experiments.pcr import pcr_case_study
    from repro.placement.annealer import AnnealingParams
    from repro.placement.sa_placer import SimulatedAnnealingPlacer

    study = pcr_case_study()
    placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
    placement = placer.place(study.schedule, study.binding).placement
    width, height = placement.array_dims()

    tester = OnlineTester()
    plan = tester.plan(placement, at_time=0.0)
    fault = max(plan.cells_covered)  # a free cell the campaign must find

    def campaign():
        array = MicrofluidicArray(width, height)
        array.mark_faulty(fault)
        return tester.execute(array, plan)

    outcome = benchmark(campaign)

    assert fault in outcome.faults_found
    report(
        "On-line testing (refs [13]/[14])",
        format_table(
            ("metric", "value"),
            [
                ("free cells covered at t=0", len(plan.cells_covered)),
                ("test walks", len(plan.paths)),
                ("walk steps total", plan.total_steps),
                ("droplet dispenses incl. localization", outcome.runs),
                ("fault localized", str(outcome.faults_found[0])),
            ],
        ),
    )
