"""Multi-fault tolerance — the paper's single-fault model, extended.

Section 5.2 justifies the single-fault assumption by frequent testing
and notes the model updates easily. This bench runs the sequential-
fault Monte Carlo on the min-area and the fault-aware placements: the
beta=30 placement should absorb measurably more consecutive faults.
"""

import pytest

from repro.fault.tolerance import ToleranceAnalyzer
from repro.util.tables import format_table

_results: dict[str, tuple[float, float]] = {}


@pytest.fixture(scope="module")
def placements():
    from repro.experiments.pcr import pcr_case_study
    from repro.placement.annealer import AnnealingParams
    from repro.placement.sa_placer import SimulatedAnnealingPlacer
    from repro.placement.two_stage import TwoStagePlacer

    study = pcr_case_study()
    min_area = SimulatedAnnealingPlacer(
        params=AnnealingParams.fast(), seed=2
    ).place(study.schedule, study.binding).placement
    fault_aware = TwoStagePlacer(
        beta=30.0, stage1_params=AnnealingParams.fast(), seed=7
    ).place(study.schedule, study.binding).placement
    return {"min-area": min_area, "fault-aware (beta=30)": fault_aware}


@pytest.mark.parametrize("which", ["min-area", "fault-aware (beta=30)"])
def test_multi_fault_survival(benchmark, report, placements, which):
    analyzer = ToleranceAnalyzer()
    placement = placements[which]

    result = benchmark.pedantic(
        analyzer.multi_fault_survival,
        kwargs={"placement": placement, "trials": 60, "max_faults": 6, "seed": 11},
        rounds=1,
        iterations=1,
    )

    _results[which] = (
        result.mean_faults_to_failure,
        result.survival_probability(1),
    )

    if len(_results) == 2:
        assert (
            _results["fault-aware (beta=30)"][0] >= _results["min-area"][0]
        ), "fault-aware placement should absorb at least as many faults"
        report(
            "Multi-fault survival (sequential faults, Monte Carlo)",
            format_table(
                ("placement", "mean faults to failure", "P(survive 1st)"),
                [
                    (k, f"{m:.2f}", f"{p:.2f}")
                    for k, (m, p) in sorted(_results.items())
                ],
            )
            + "\n(P(survive 1st fault) estimates the paper's FTI)",
        )
