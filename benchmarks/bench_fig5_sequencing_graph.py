"""Figure 5 — the PCR mixing-stage sequencing graph.

Times graph construction + structural analysis and reports the
regenerated figure's facts (nodes, edges, critical path).
"""

from repro.experiments.fig5 import describe_pcr_graph


def test_fig5_sequencing_graph(benchmark, report):
    facts = benchmark(describe_pcr_graph)

    assert facts.node_count == 7
    assert facts.edge_count == 6
    assert facts.is_balanced_binary_tree
    assert facts.critical_path == ("M3", "M6", "M7")

    lines = [
        f"nodes: {facts.node_count} mix operations",
        f"edges: {', '.join(f'{u}->{v}' for u, v in facts.edges)}",
        f"levels: {facts.levels}",
        f"critical path: {' -> '.join(facts.critical_path)} (19 s)",
        "shape: balanced binary mixing tree (4 leaves, 2 mid, 1 root)",
    ]
    report("Figure 5: PCR sequencing graph", "\n".join(lines))
