"""Online fault-recovery engine: the acceptance gate.

Not a paper artifact — the proof obligations of ``repro.recovery``:

1. **Recovery success.** For a mid-assay fault aimed at a pending
   module, the online engine (checkpoint -> warm re-place -> suffix
   re-route -> resume) must recover at least as many bundled assays as
   the *offline fault-aware baseline* — the pre-existing pipeline run
   with the same fault known at time zero (fault-aware routing and
   verification; placement fault-oblivious, exactly as the offline
   flow ships). Knowing the fault before synthesis starts is strictly
   easier, so matching it online is the bar. The same scenario is also
   run **closed-loop** (lossy capacitive sensing, no oracle), which
   must complete whenever the perfect-knowledge engine recovers.
2. **Re-synthesis latency.** On the paper schedule (tree16), suffix
   re-routing — only the epochs released after the fault, step counters
   continued from the kept prefix — must beat a full re-route of the
   whole plan by >= 2x aggregated over mid- and late-assay faults.

Results are written machine-readably to ``BENCH_recovery.json``; CI
runs this file under ``REPRO_BENCH_FAST=1`` (one timing rep, fast
annealing schedules, a relaxed 1.5x latency bar for noisy shared
runners) and uploads the JSON as an artifact.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.assay.catalog import BUNDLED_ASSAYS, build_assay
from repro.fault.models import FAIL, FaultEvent
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.recovery import ClosedLoopController, OnlineRecoveryEngine
from repro.recovery.engine import pick_fault_cell
from repro.testing import CapacitiveSensor
from repro.routing.synthesis import RoutingSynthesizer
from repro.sim.engine import BiochipSimulator
from repro.synthesis.flow import SynthesisFlow
from repro.util.errors import ReproError, RoutingError
from repro.util.tables import format_table

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")
ASSAYS = ("pcr", "dilution", "ivd") if FAST else tuple(sorted(BUNDLED_ASSAYS))
REPS = 1 if FAST else 3
LATENCY_BAR = 1.5 if FAST else 2.0
FAULT_FRACTIONS = (0.5, 0.75)
SEED = 7
TARGET_SEED = 3

_nominal: dict[str, object] = {}
_success_rows: list[tuple] = []
_results: dict[str, dict] = {}


def _synthesize(assay: str, faulty_cells=(), params: AnnealingParams | None = None):
    graph, binding = build_assay(assay)
    flow = SynthesisFlow(
        placer=SimulatedAnnealingPlacer(
            params=params or AnnealingParams.fast(), seed=SEED
        ),
        route=True,
    )
    return flow.run(graph, explicit_binding=binding, faulty_cells=faulty_cells)


def _nominal_result(assay: str):
    if assay not in _nominal:
        _nominal[assay] = _synthesize(assay)
    return _nominal[assay]


def _offline_baseline_recovers(assay: str, cell) -> bool:
    """The pre-existing offline capability: synthesize with the fault
    known at time zero, then verify by droplet-level replay."""
    try:
        result = _synthesize(assay, faulty_cells=[cell])
    except ReproError:
        return False
    plan = result.routing_plan
    if plan is None or plan.failed_count:
        return False
    try:
        plan.verify()
    except RoutingError:
        return False
    sim = BiochipSimulator(
        result.graph,
        result.schedule,
        result.binding,
        result.placement_result.placement,
        strict=False,
        routing_plan=plan,
    )
    sim_cell = sim.sim_cell(cell)
    sim.plan_covers_faults = frozenset((sim_cell,))
    report = sim.run(faults=[(0.0, sim_cell)])
    return report.completed


@pytest.mark.parametrize("assay", ASSAYS)
def test_recovery_success_vs_offline_baseline(assay):
    result = _nominal_result(assay)
    engine = OnlineRecoveryEngine(annealing=AnnealingParams.fast())
    fault_time = 0.5 * result.schedule.makespan
    checkpoint = engine.checkpoint_of(result, fault_time)
    cell = pick_fault_cell(result, checkpoint, "pending-module", rng=TARGET_SEED)

    outcome = engine.recover(
        result, [cell], fault_time, seed=TARGET_SEED, checkpoint=checkpoint
    )
    offline = _offline_baseline_recovers(assay, cell)
    closed = ClosedLoopController(
        engine=OnlineRecoveryEngine(annealing=AnnealingParams.fast()),
        sensor=CapacitiveSensor(
            false_positive_rate=0.02, false_negative_rate=0.05
        ),
    ).run(
        result,
        (FaultEvent(fault_time, cell, FAIL),),
        seed=TARGET_SEED,
        mode="closed-loop",
    )
    _success_rows.append(
        (
            assay,
            str(cell),
            f"t={fault_time:g}s",
            "yes" if outcome.recovered else f"no ({outcome.reason})",
            "yes" if closed.completed else f"no ({closed.reason})",
            "yes" if offline else "no",
            f"{outcome.makespan_penalty_s:g}",
            f"{outcome.recovery_s * 1000:.1f}",
        )
    )
    _results.setdefault("per_assay", {})[assay] = {
        "fault_cell": [cell.x, cell.y],
        "fault_time_s": fault_time,
        "online_recovered": outcome.recovered,
        "closed_loop_completed": closed.completed,
        "closed_loop_rung": closed.final_rung,
        "offline_recovered": offline,
        "makespan_penalty_s": outcome.makespan_penalty_s,
        "recovery_ms": outcome.recovery_s * 1000,
        "replace_ms": outcome.replace_s * 1000,
        "reroute_ms": outcome.reroute_s * 1000,
        "rerouted_nets": outcome.rerouted_nets,
        "reused_epochs": outcome.reused_epochs,
    }


def test_recovery_success_bar(report, bench_json):
    if len(_results.get("per_assay", {})) < len(ASSAYS):
        pytest.skip("needs the per-assay outcomes from the full module run")
    per = _results["per_assay"]
    online = sum(1 for r in per.values() if r["online_recovered"])
    closed = sum(1 for r in per.values() if r["closed_loop_completed"])
    offline = sum(1 for r in per.values() if r["offline_recovered"])
    table = format_table(
        ("assay", "fault", "arrival", "online", "closed loop", "offline",
         "penalty s", "resynth ms"),
        _success_rows,
    )
    report(
        "Online recovery vs offline fault-aware baseline",
        f"{table}\n\nonline {online}/{len(per)}, closed-loop "
        f"{closed}/{len(per)} vs offline {offline}/{len(per)} (fast={FAST})",
    )
    bench_json(
        "recovery_success",
        {
            "fast_mode": FAST,
            "assays": per,
            "online_recovered": online,
            "closed_loop_completed": closed,
            "offline_recovered": offline,
            "scenario_count": len(per),
        },
        default="BENCH_recovery.json",
    )
    assert online >= offline, (
        f"online recovery ({online}/{len(per)}) fell below the offline "
        f"fault-aware baseline ({offline}/{len(per)})"
    )
    assert closed >= online, (
        f"closed-loop completion ({closed}/{len(per)}) fell below the "
        f"oracle-knowledge online engine ({online}/{len(per)})"
    )


def test_suffix_reroute_beats_full_reroute(report, bench_json):
    """Aggregate over mid- and late-assay faults on the paper-scale
    assay: re-routing only the suffix must be >= LATENCY_BAR x faster
    than re-routing the whole plan against the same fault mask."""
    params = AnnealingParams.fast() if FAST else AnnealingParams.paper()
    result = _synthesize("tree16", params=params)
    engine = OnlineRecoveryEngine(
        annealing=AnnealingParams.fast() if FAST else None
    )
    synthesizer = RoutingSynthesizer()
    rows = []
    total_suffix = total_full = 0.0
    fractions: dict[str, dict] = {}
    for fraction in FAULT_FRACTIONS:
        fault_time = fraction * result.schedule.makespan
        checkpoint = engine.checkpoint_of(result, fault_time)
        cell = pick_fault_cell(
            result, checkpoint, "pending-module", rng=TARGET_SEED
        )
        outcome = engine.recover(
            result, [cell], fault_time, seed=TARGET_SEED, checkpoint=checkpoint
        )
        assert outcome.recovered, f"tree16 @{fraction:.0%}: {outcome.reason}"
        placement = outcome.placement
        best_suffix = best_full = float("inf")
        for _ in range(REPS):
            t0 = time.perf_counter()
            suffix = synthesizer.synthesize(
                result.graph, result.schedule, placement, [cell],
                after_time=fault_time,
            )
            best_suffix = min(best_suffix, time.perf_counter() - t0)
            t0 = time.perf_counter()
            full = synthesizer.synthesize(
                result.graph, result.schedule, placement, [cell]
            )
            best_full = min(best_full, time.perf_counter() - t0)
        total_suffix += best_suffix
        total_full += best_full
        rows.append(
            (
                f"{fraction:.0%}",
                len(suffix.epochs),
                len(full.epochs),
                f"{best_suffix * 1000:.1f}",
                f"{best_full * 1000:.1f}",
                f"{best_full / best_suffix:.1f}x",
            )
        )
        fractions[f"{fraction:g}"] = {
            "suffix_epochs": len(suffix.epochs),
            "full_epochs": len(full.epochs),
            "suffix_ms": best_suffix * 1000,
            "full_ms": best_full * 1000,
            "speedup": best_full / best_suffix,
        }
    speedup = total_full / total_suffix
    table = format_table(
        ("fault at", "suffix epochs", "full epochs", "suffix ms", "full ms",
         "speedup"),
        rows,
    )
    report(
        "Suffix re-route vs full re-route (tree16, paper schedule)",
        f"{table}\n\naggregate speedup {speedup:.1f}x "
        f"(bar {LATENCY_BAR}x, fast={FAST})",
    )
    bench_json(
        "suffix_reroute_latency",
        {
            "fast_mode": FAST,
            "assay": "tree16",
            "reps": REPS,
            "fractions": fractions,
            "aggregate_speedup": speedup,
            "speedup_bar": LATENCY_BAR,
        },
        default="BENCH_recovery.json",
    )
    assert speedup >= LATENCY_BAR, (
        f"suffix re-route speedup {speedup:.2f}x below the {LATENCY_BAR}x bar"
    )
