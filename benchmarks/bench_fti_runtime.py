"""Section 5.3 — "the calculation of FTI takes only 1.7 seconds".

The paper's point is that FTI is cheap enough to call inside a
placement loop. We time all three of our FTI algorithms on the measured
min-area placement and check they agree exactly:

* ``placements`` — summed-area-table position counting (ours; evaluates
  each module once, used inside the LTSA loop) — the fastest.
* ``mer`` — the paper's literal Section 5.3 procedure, which re-mines
  the maximal empty rectangles for every candidate faulty cell; its
  cost scales with (module cells) x (MER sweep), so on the paper-sized
  7x9 array it is measurably slower than the one-pass methods while
  still orders of magnitude under the paper's 1.7 s anecdote.
* ``bruteforce`` — the pure-Python per-cell position scan (reference).
"""

import pytest

from repro.fault.fti import compute_fti


@pytest.fixture(scope="module")
def placement(request):
    from repro.experiments.pcr import pcr_case_study
    from repro.placement.annealer import AnnealingParams
    from repro.placement.sa_placer import SimulatedAnnealingPlacer

    study = pcr_case_study()
    placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
    return placer.place(study.schedule, study.binding).placement


@pytest.mark.parametrize("method", ["placements", "mer", "bruteforce"])
def test_fti_runtime(benchmark, report, placement, method):
    result = benchmark(compute_fti, placement, method=method)

    reference = compute_fti(placement, method="bruteforce")
    assert result.covered == reference.covered

    report(
        f"FTI runtime ({method})",
        f"FTI = {result.fti:.4f} ({result.fault_tolerance_number}/"
        f"{result.cell_count} C-covered) on the "
        f"{result.width}x{result.height} min-area array; paper anecdote: "
        "1.7 s on a 1 GHz Pentium-III for the MER procedure",
    )
