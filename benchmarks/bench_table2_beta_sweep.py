"""Table 2 — area/FTI trade-off over beta in {10, 20, 30, 40, 50, 60}.

The paper sweeps the fault-tolerance weight from "disposable glucose
detector" (small beta, small area) to "implantable drug dosing" (large
beta, FTI 1.0). The reproduced *shape*: area and FTI grow with beta,
the min-area solution appears at beta = 10, and full coverage (FTI 1.0)
is reached at the high end.
"""

from repro.experiments.table2 import run_beta_sweep
from repro.placement.annealer import AnnealingParams


def test_table2_beta_sweep(benchmark, report):
    sweep = benchmark.pedantic(
        run_beta_sweep,
        kwargs={"seed": 7, "stage1_params": AnnealingParams.fast()},
        rounds=1,
        iterations=1,
    )

    rows = sweep.rows
    assert len(rows) == 6
    # Directional shape (individual rows carry SA noise):
    assert rows[-1].fti > rows[0].fti
    assert rows[-1].area_mm2 >= rows[0].area_mm2
    assert sweep.reaches_full_coverage()
    assert sweep.fti_is_monotone(tolerance=0.15)
    for row in rows:
        row.result.placement.validate()

    lines = [
        sweep.table_text(),
        "",
        f"FTI monotone in beta (tol 0.15): {sweep.fti_is_monotone(0.15)}",
        f"reaches FTI 1.0 at high beta: {sweep.reaches_full_coverage()}",
    ]
    report("Table 2: beta sweep", "\n".join(lines))
