"""Supervised execution layer: the robustness acceptance gate.

Not a paper artifact — the proof obligations of ``repro.exec``:

1. **Supervision is nearly free.** On a healthy (chaos-free) workload,
   :class:`repro.exec.SupervisedPool` must stay within 5% of a raw
   ``ProcessPoolExecutor.map`` over the same tasks and worker count —
   campaigns pay for crash recovery only when crashes happen.
2. **Chaos converges to the clean result.** Under injected worker
   faults (task-scoped failures and worker kills), retried results must
   be bit-identical to the chaos-free run — supervision repairs the
   execution without perturbing the computation.

Results are written machine-readably to ``BENCH_robustness.json``; CI
runs this file under ``REPRO_BENCH_FAST=1`` (fewer reps, smaller task
grid, a relaxed overhead bar for noisy shared runners) and uploads the
JSON as an artifact.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.exec import SupervisedPool
from repro.testing.chaos import ChaosPolicy
from repro.util.tables import format_table

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")
REPS = 3 if FAST else 5
TASKS = 8 if FAST else 16
JOBS = 2
#: Per-task CPU weight, tuned so one rep amortizes pool startup noise.
WORK = 120_000
#: Allowed supervised-over-raw wall-clock ratio on a healthy workload.
OVERHEAD_BAR = 1.10 if FAST else 1.05


def _work(seed: int) -> int:
    """A deterministic CPU-bound stand-in for one campaign scenario."""
    acc = seed & 0xFFFFFFFF
    for i in range(WORK):
        acc = (acc * 1664525 + 1013904223 + i) & 0xFFFFFFFF
    return acc


def _best_of(reps: int, fn) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _raw_map(tasks):
    with ProcessPoolExecutor(max_workers=JOBS) as pool:
        return list(pool.map(_work, tasks))


def _supervised_map(tasks, chaos=None, max_retries=2, pool_failure_limit=3):
    pool = SupervisedPool(
        jobs=JOBS, chaos=chaos or ChaosPolicy.none(),
        max_retries=max_retries, backoff_base=0.0,
        pool_failure_limit=pool_failure_limit,
    )
    outcomes = pool.map(_work, tasks)
    return [o.value for o in outcomes], pool


def test_supervision_overhead_and_chaos_equivalence(report, bench_json):
    tasks = list(range(TASKS))

    raw_s, raw_values = _best_of(REPS, lambda: _raw_map(tasks))
    sup_s, (sup_values, _) = _best_of(
        REPS, lambda: _supervised_map(tasks)
    )
    overhead = sup_s / raw_s

    # Task-scoped chaos: a third of the tasks fail their first attempt
    # with an unpicklable exception and must be retried transparently.
    plan = {(i, 0): "unpicklable" for i in range(0, TASKS, 3)}
    chaos = ChaosPolicy.explicit_plan(plan)
    chaos_s, (chaos_values, chaos_pool) = _best_of(
        1, lambda: _supervised_map(tasks, chaos=chaos)
    )

    # Determinism first: supervision must never perturb the results.
    assert sup_values == raw_values
    assert chaos_values == raw_values, (
        "post-retry results diverged from the chaos-free run"
    )

    payload = {
        "tasks": TASKS,
        "jobs": JOBS,
        "reps": REPS,
        "raw_pool_s": raw_s,
        "supervised_s": sup_s,
        "overhead_ratio": overhead,
        "overhead_bar": OVERHEAD_BAR,
        "chaos_injections": len(plan),
        "chaos_s": chaos_s,
        "chaos_results_identical": chaos_values == raw_values,
    }
    bench_json("supervision_overhead", payload, default="BENCH_robustness.json")

    report(
        f"Supervised execution overhead ({TASKS} tasks, jobs={JOBS}, "
        f"best of {REPS})",
        format_table(
            ("executor", "wall s", "vs raw"),
            [
                ("raw ProcessPoolExecutor", f"{raw_s:.3f}", "1.00x"),
                ("SupervisedPool (no chaos)", f"{sup_s:.3f}",
                 f"{overhead:.2f}x"),
                (f"SupervisedPool ({len(plan)} chaos faults)",
                 f"{chaos_s:.3f}", f"{chaos_s / raw_s:.2f}x"),
            ],
        ),
    )

    assert overhead <= OVERHEAD_BAR, (
        f"supervision overhead {overhead:.2f}x exceeds the "
        f"{OVERHEAD_BAR:.2f}x bar (raw {raw_s:.3f}s vs supervised "
        f"{sup_s:.3f}s)"
    )


def test_degraded_serial_path_still_completes(report, bench_json):
    """Worst case: every first attempt dies and the rebuild budget is
    zero — the pool must degrade to in-process serial execution and
    still return every result, bit-identical."""
    tasks = list(range(TASKS))
    expected = [_work(t) for t in tasks]

    chaos = ChaosPolicy.explicit_plan({(i, 0): "worker-kill" for i in tasks})
    t0 = time.perf_counter()
    values, pool = _supervised_map(tasks, chaos=chaos, pool_failure_limit=0)
    wall_s = time.perf_counter() - t0

    assert pool.degraded
    assert values == expected

    bench_json(
        "degraded_serial",
        {"tasks": TASKS, "wall_s": wall_s, "degraded": pool.degraded},
        default="BENCH_robustness.json",
    )
    report(
        "Degraded serial drain (every worker killed, rebuild budget 0)",
        f"  {TASKS} tasks completed in {wall_s:.3f} s after degradation",
    )
