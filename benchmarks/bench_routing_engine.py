"""Packed routing engine vs the reference path: the proof.

Not a paper artifact — the acceptance gate for the packed-integer
routing core (``repro.routing.timegrid`` + incremental negotiation).
Two claims, measured on the bundled assays under their paper-derived
schedules with a 10% fault grid (10% of the non-module cells of the
padded routing area marked defective at a fixed seed):

1. **Throughput.** Routing synthesis on the packed engine must deliver
   >= 4x routed-nets/sec over the reference path (the original
   Point-dict grid, generic A*, and full-round negotiation), aggregated
   over the five bundled assays.
2. **Plan identity.** At fixed seeds the packed engine must produce
   *bit-identical* routing plans — every epoch, every trajectory, every
   step — with and without fault injection, on all five assays.

Results are also written machine-readably to ``BENCH_routing.json``
(section ``routing_engine``); CI smoke-runs this file with
``REPRO_BENCH_FAST=1``, which drops the timing repetitions to one and
relaxes the throughput bar to 2.5x (shared CI runners are noisy), and
uploads the JSON as an artifact.

Fault scenarios are chosen to route at 100% and pass the independent
verifier on both engines. (The seed table predates the two-sided
merge/split-exemption fix, which removed the latent quirk that used to
constrain seed choice — see DESIGN.md and
tests/test_routing_merge_exemption.py; the pinned seeds remain valid
and keep the timing baseline comparable across PRs.)
"""

from __future__ import annotations

import os
import time

import pytest

from repro.assay.catalog import BUNDLED_ASSAYS
from repro.fault.injection import sample_street_faults
from repro.pipeline.context import SynthesisContext
from repro.pipeline.stages import BindStage, PlaceStage, ScheduleStage
from repro.routing import RoutingSynthesizer
from repro.util.tables import format_table

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")
SPEEDUP_BAR = 2.5 if FAST else 4.0
REPS = 1 if FAST else 3
FAULT_RATE = 0.10
FAULT_SEED = 1
#: Placement seeds with verifier-clean 10%-fault routing on both
#: engines (pinned for timing-baseline stability; see module docstring).
PLACEMENT_SEEDS = {"pcr": 2, "dilution": 2, "ivd": 2, "tree8": 7, "tree16": 2}

_prepared: dict[str, tuple] = {}
_rows: dict[str, tuple] = {}
_totals: dict[str, float] = {"nets": 0, "packed_s": 0.0, "reference_s": 0.0}


def _prepare(assay: str):
    """Bind + schedule + place once per assay; returns the routing
    inputs plus the fixed 10% fault sample (drawn by the shared
    :func:`repro.fault.injection.sample_street_faults` generator)."""
    if assay not in _prepared:
        graph, binding = BUNDLED_ASSAYS[assay]()
        context = SynthesisContext(graph=graph, explicit_binding=binding)
        BindStage().run(context)
        ScheduleStage(max_concurrent_ops=3).run(context)
        PlaceStage(seed=PLACEMENT_SEEDS[assay], compute_fti_report=False).run(context)
        placement = context.placement_result.placement
        faults = sample_street_faults(placement, FAULT_SEED, rate=FAULT_RATE)
        _prepared[assay] = (graph, context.schedule, placement, faults)
    return _prepared[assay]


def _timed_synthesis(reference: bool, graph, schedule, placement, faults):
    """Best-of-REPS synthesis wall time plus the (deterministic) plan."""
    synthesizer = RoutingSynthesizer(reference=reference)
    best = float("inf")
    plan = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        plan = synthesizer.synthesize(graph, schedule, placement, faults)
        best = min(best, time.perf_counter() - t0)
    return plan, best


@pytest.mark.parametrize("assay", sorted(BUNDLED_ASSAYS))
def test_routing_engine_identity_and_speed(assay):
    graph, schedule, placement, faults = _prepare(assay)

    # Plan identity must hold with and without fault injection.
    clean_packed, _ = _timed_synthesis(False, graph, schedule, placement, [])
    clean_ref, _ = _timed_synthesis(True, graph, schedule, placement, [])
    assert clean_packed == clean_ref, f"{assay}: fault-free plans diverge"
    clean_packed.verify()

    packed_plan, packed_s = _timed_synthesis(False, graph, schedule, placement, faults)
    ref_plan, ref_s = _timed_synthesis(True, graph, schedule, placement, faults)
    assert packed_plan == ref_plan, f"{assay}: 10%-fault plans diverge"
    packed_plan.verify()
    assert packed_plan.routability == 1.0, f"{assay}: unrouted nets {packed_plan.failed}"

    _totals["nets"] += packed_plan.routed_count
    _totals["packed_s"] += packed_s
    _totals["reference_s"] += ref_s
    _rows[assay] = (
        assay,
        packed_plan.routed_count,
        len(packed_plan.epochs),
        len(faults),
        f"{packed_plan.routed_count / packed_s:,.0f}",
        f"{packed_plan.routed_count / ref_s:,.0f}",
        f"{ref_s / packed_s:.1f}x",
    )


def test_aggregate_speedup_bar(report, bench_json):
    if len(_rows) < len(BUNDLED_ASSAYS):
        pytest.skip("needs the per-assay timings from the full module run")
    packed_rate = _totals["nets"] / _totals["packed_s"]
    ref_rate = _totals["nets"] / _totals["reference_s"]
    speedup = _totals["reference_s"] / _totals["packed_s"]

    table = format_table(
        ("assay", "nets", "epochs", "faults", "packed nets/s", "ref nets/s", "speedup"),
        [_rows[a] for a in sorted(_rows)],
    )
    report(
        "Routing engine: packed vs reference (10% fault grid)",
        f"{table}\n\naggregate: {packed_rate:,.0f} vs {ref_rate:,.0f} nets/s "
        f"= {speedup:.1f}x (bar {SPEEDUP_BAR}x, fast={FAST})",
    )
    bench_json(
        "routing_engine",
        {
            "fast_mode": FAST,
            "fault_rate": FAULT_RATE,
            "reps": REPS,
            "assays": {
                a: {
                    "nets": _rows[a][1],
                    "epochs": _rows[a][2],
                    "faulty_cells": _rows[a][3],
                    "packed_nets_per_s": float(_rows[a][4].replace(",", "")),
                    "reference_nets_per_s": float(_rows[a][5].replace(",", "")),
                    "plans_identical": True,
                }
                for a in sorted(_rows)
            },
            "aggregate_packed_nets_per_s": packed_rate,
            "aggregate_reference_nets_per_s": ref_rate,
            "aggregate_speedup": speedup,
            "speedup_bar": SPEEDUP_BAR,
        },
        default="BENCH_routing.json",
    )
    assert speedup >= SPEEDUP_BAR, (
        f"packed engine speedup {speedup:.2f}x below the {SPEEDUP_BAR}x bar "
        f"({packed_rate:,.0f} vs {ref_rate:,.0f} routed nets/s)"
    )
