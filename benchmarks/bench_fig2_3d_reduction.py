"""Figure 2 — reduction from 3-D packing to modified 2-D placement.

Times the construction of the 3-D boxes and their cutting-plane views
on a placed PCR assay, and verifies the reduction's invariant: every
cut of a feasible modified-2-D placement is an overlap-free 2-D
placement.
"""

from repro.experiments.fig2 import demonstrate_3d_reduction
from repro.viz.ascii_art import render_placement


def test_fig2_3d_reduction(benchmark, report):
    demo = benchmark.pedantic(
        demonstrate_3d_reduction, kwargs={"seed": 11}, rounds=1, iterations=1
    )

    assert len(demo.boxes) == 7
    assert all(demo.cut_is_overlap_free(t) for t in demo.time_planes)

    lines = [
        f"3-D boxes: {len(demo.boxes)} (total volume "
        f"{demo.total_box_volume:g} cell-seconds)",
        f"cutting planes t = {[f'{t:g}' for t in demo.time_planes]}",
    ]
    for t in demo.time_planes[:2]:
        lines.append("")
        lines.append(f"cut at t = {t:g}s (active: {', '.join(demo.cuts[t])}):")
        lines.append(render_placement(demo.placement, at_time=t, legend=False))
    lines.append("")
    lines.append("merged modified 2-D placement (all cuts combined):")
    lines.append(render_placement(demo.placement, legend=False))
    report("Figure 2: 3-D packing -> modified 2-D placement", "\n".join(lines))
