"""Figure 6 — the schedule of module usage.

Times resource-constrained list scheduling on the PCR graph and
regenerates the Gantt chart. The paper's own figure is not recoverable
from the text, so the assertions pin the *consistency conditions* it
must satisfy: makespan equal to the 19 s critical path and concurrent
cell demand within the paper's 63-cell array.
"""

from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.experiments.pcr import (
    CELL_CAPACITY,
    MAX_CONCURRENT_MODULES,
    pcr_case_study,
)
from repro.synthesis.binder import ResourceBinder
from repro.synthesis.scheduler import list_schedule
from repro.viz.ascii_art import render_gantt


def test_fig6_schedule(benchmark, report):
    graph = build_pcr_mixing_graph()
    binding = ResourceBinder().bind(graph, explicit=PCR_BINDING)
    durations = binding.durations()
    footprints = {op: spec.footprint_area for op, spec in binding.items()}

    schedule = benchmark(
        list_schedule,
        graph,
        durations,
        MAX_CONCURRENT_MODULES,
        CELL_CAPACITY,
        footprints,
    )

    assert schedule.makespan == 19.0
    assert schedule.peak_cell_demand(footprints) <= 63
    schedule.validate_precedence(graph)

    study = pcr_case_study()
    lines = [
        render_gantt(study.schedule),
        "",
        f"makespan: {study.makespan:g} s (= critical path; the concurrency "
        "cap costs nothing on PCR)",
        f"peak concurrent cell demand: {study.peak_cell_demand} cells "
        "(fits the paper's 63-cell array)",
    ]
    report("Figure 6: schedule of module usage", "\n".join(lines))
