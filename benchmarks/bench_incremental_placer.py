"""Incremental delta-cost annealing vs full recompute: the proof.

Not a paper artifact — the acceptance gate for the incremental
placement engine (``repro.placement.incremental``). Two claims:

1. **Throughput.** On the paper's published annealing schedule
   (T0=10000, alpha=0.9, Na=400) over an assay with >= 10 placed
   modules, the incremental path must deliver >= 4x proposals/sec over
   the full-recompute reference. (Both paths run the identical move
   stream — the generator consumes the same RNG draws either way.)
2. **Quality parity.** Across the bundled assay catalog at fixed
   seeds, the incremental path's median bounding-array area must be
   equal or better per assay — the speedup cannot cost placement
   quality.

Results are also written machine-readably to ``BENCH_placement.json``
(section names below); CI smoke-runs this file with
``REPRO_BENCH_FAST=1``, which shrinks the schedule and relaxes the
throughput bar to 2x (tiny runs leave the O(n^2) path too little room
to lose), and uploads the JSON as an artifact.
"""

from __future__ import annotations

import os
import statistics

import pytest

from repro.assay.catalog import BUNDLED_ASSAYS
from repro.pipeline.context import SynthesisContext
from repro.pipeline.stages import BindStage, ScheduleStage
from repro.placement.annealer import AnnealingParams
from repro.placement.greedy import build_placed_modules
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.util.tables import format_table

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")
SPEEDUP_BAR = 2.0 if FAST else 4.0
THROUGHPUT_ASSAY = "tree16"  # 31 placed modules — well past the >=10 floor
PARITY_SEEDS = (7,) if FAST else (2, 7, 11)


def _paper_schedule() -> AnnealingParams:
    """The paper schedule, round-capped so the reference path ends today.

    Proposals/sec is a per-round-invariant rate; capping rounds bounds
    wall-clock without touching the per-proposal work being measured.
    """
    base = AnnealingParams.fast() if FAST else AnnealingParams.paper()
    return AnnealingParams(
        initial_temp=base.initial_temp,
        cooling=base.cooling,
        iterations_per_module=base.iterations_per_module,
        window_gamma=base.window_gamma,
        max_rounds=2,
    )


def _modules_for(assay: str):
    graph, binding = BUNDLED_ASSAYS[assay]()
    context = SynthesisContext(graph=graph, explicit_binding=binding)
    BindStage().run(context)
    ScheduleStage().run(context)
    return build_placed_modules(context.schedule, context.binding)


def _place(modules, seed: int, incremental: bool, params: AnnealingParams):
    placer = SimulatedAnnealingPlacer(
        params=params, seed=seed, incremental=incremental, record_history=False
    )
    return placer.place_modules(modules)


def test_throughput_paper_schedule(report, bench_json):
    modules = _modules_for(THROUGHPUT_ASSAY)
    assert len(modules) >= 10, "the throughput bar is defined for >= 10 modules"
    params = _paper_schedule()

    full = _place(modules, seed=7, incremental=False, params=params)
    inc = _place(modules, seed=7, incremental=True, params=params)
    speedup = inc.proposals_per_s / full.proposals_per_s

    text = format_table(
        ("path", "proposals", "wall s", "proposals/s", "area cells"),
        [
            ("full-recompute", full.stats.evaluations,
             f"{full.runtime_s:.2f}", f"{full.proposals_per_s:,.0f}",
             full.area_cells),
            ("incremental", inc.stats.evaluations,
             f"{inc.runtime_s:.2f}", f"{inc.proposals_per_s:,.0f}",
             inc.area_cells),
        ],
    )
    schedule = "fast (CI smoke)" if FAST else "paper (T0=10000, Na=400)"
    report(
        f"Incremental placer throughput: {THROUGHPUT_ASSAY} "
        f"({len(modules)} modules), {schedule} schedule — {speedup:.1f}x",
        text,
    )
    bench_json("incremental_throughput", {
        "assay": THROUGHPUT_ASSAY,
        "modules": len(modules),
        "schedule": "fast" if FAST else "paper",
        "full": {
            "proposals": full.stats.evaluations,
            "wall_s": full.runtime_s,
            "proposals_per_s": full.proposals_per_s,
            "area_cells": full.area_cells,
        },
        "incremental": {
            "proposals": inc.stats.evaluations,
            "wall_s": inc.runtime_s,
            "proposals_per_s": inc.proposals_per_s,
            "area_cells": inc.area_cells,
        },
        "speedup": speedup,
        "bar": SPEEDUP_BAR,
    })
    assert speedup >= SPEEDUP_BAR, (
        f"incremental path delivered {speedup:.2f}x proposals/sec over the "
        f"full-recompute reference; the bar is {SPEEDUP_BAR}x"
    )


def test_area_parity_across_catalog(report, bench_json):
    params = AnnealingParams.fast()
    rows = []
    payload = {}
    regressions = []
    for assay in sorted(BUNDLED_ASSAYS):
        modules = _modules_for(assay)
        full_areas = [
            _place(modules, seed=s, incremental=False, params=params).area_cells
            for s in PARITY_SEEDS
        ]
        inc_areas = [
            _place(modules, seed=s, incremental=True, params=params).area_cells
            for s in PARITY_SEEDS
        ]
        med_full = statistics.median(full_areas)
        med_inc = statistics.median(inc_areas)
        rows.append((assay, len(modules), list(PARITY_SEEDS),
                     f"{med_full:g}", f"{med_inc:g}"))
        payload[assay] = {
            "modules": len(modules),
            "seeds": list(PARITY_SEEDS),
            "full_areas": full_areas,
            "incremental_areas": inc_areas,
            "median_full": med_full,
            "median_incremental": med_inc,
        }
        if med_inc > med_full:
            regressions.append((assay, med_full, med_inc))

    report(
        "Incremental placer area parity (median cells at fixed seeds)",
        format_table(
            ("assay", "modules", "seeds", "median full", "median incremental"),
            rows,
        ),
    )
    bench_json("incremental_area_parity", payload)
    assert not regressions, (
        "incremental path regressed median area on: "
        + ", ".join(f"{a} ({f:g} -> {i:g})" for a, f, i in regressions)
    )


@pytest.mark.skipif(FAST, reason="cross-check timing is covered by tier-1 tests")
def test_cross_check_overhead_is_reported(report):
    """Cross-check mode is a verification tool; report what it costs."""
    modules = _modules_for("pcr")
    params = AnnealingParams.fast()
    plain = _place(modules, seed=7, incremental=True, params=params)
    checked = SimulatedAnnealingPlacer(
        params=params, seed=7, cross_check=True, record_history=False
    ).place_modules(modules)
    assert checked.area_cells == plain.area_cells
    report(
        "Cross-check mode overhead (pcr, fast schedule)",
        f"plain incremental: {plain.proposals_per_s:,.0f} proposals/s\n"
        f"with per-move verification: {checked.proposals_per_s:,.0f} "
        f"proposals/s ({plain.proposals_per_s / checked.proposals_per_s:.1f}x "
        f"slower — verification only)",
    )
