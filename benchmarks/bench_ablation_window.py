"""Ablation A2 — the controlling window (Section 4(c)).

The paper's window discourages long displacements at low temperature
and doubles as the stopping criterion. We compare the tuned window
against a never-shrinking window (gamma ~ 0) run for the same number of
rounds: same proposal budget, but late-stage proposals are mostly
wasted long jumps.
"""

import pytest

from repro.experiments.pcr import pcr_case_study
from repro.placement.annealer import AnnealingParams
from repro.placement.sa_placer import SimulatedAnnealingPlacer
from repro.util.tables import format_table

_results: dict[str, tuple[int, int]] = {}


@pytest.mark.parametrize("variant", ["window-on", "window-off"])
def test_controlling_window(benchmark, report, variant):
    study = pcr_case_study()
    if variant == "window-on":
        params = AnnealingParams.fast()
    else:
        # gamma -> 0 keeps the span at max forever; cap rounds to match
        # the tuned schedule's round count (28 for the fast preset).
        params = AnnealingParams(
            initial_temp=500.0,
            cooling=0.8,
            iterations_per_module=40,
            window_gamma=1e-6,
            max_rounds=28,
        )

    def place():
        placer = SimulatedAnnealingPlacer(params=params, seed=17)
        return placer.place(study.schedule, study.binding)

    result = benchmark.pedantic(place, rounds=1, iterations=1)
    result.placement.validate()
    _results[variant] = (result.area_cells, result.stats.evaluations)

    if len(_results) == 2:
        report(
            "Ablation A2: controlling window",
            format_table(
                ("variant", "area (cells)", "evaluations"),
                [(k, a, e) for k, (a, e) in sorted(_results.items())],
            ),
        )
