"""Ablation A5 — module rotation during relocation and FTI analysis.

Virtual modules have no preferred orientation, and allowing the
relocated module to transpose widens the set of feasible targets. This
ablation measures the FTI gained by rotation on the min-area placement.
"""

import pytest

from repro.fault.fti import compute_fti
from repro.util.tables import format_table

_results: dict[bool, float] = {}


@pytest.fixture(scope="module")
def placement():
    from repro.experiments.pcr import pcr_case_study
    from repro.placement.annealer import AnnealingParams
    from repro.placement.sa_placer import SimulatedAnnealingPlacer

    study = pcr_case_study()
    placer = SimulatedAnnealingPlacer(params=AnnealingParams.fast(), seed=2)
    return placer.place(study.schedule, study.binding).placement


@pytest.mark.parametrize("allow_rotation", [True, False])
def test_rotation_in_fti(benchmark, report, placement, allow_rotation):
    result = benchmark(compute_fti, placement, allow_rotation=allow_rotation)
    _results[allow_rotation] = result.fti

    if len(_results) == 2:
        assert _results[True] >= _results[False]
        report(
            "Ablation A5: rotation during relocation",
            format_table(
                ("rotation", "FTI"),
                [("allowed", f"{_results[True]:.4f}"),
                 ("forbidden", f"{_results[False]:.4f}")],
            ),
        )
