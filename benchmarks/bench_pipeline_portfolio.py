"""Portfolio-executor benchmark: serial best-of-N vs process-parallel.

Not a paper artifact — the proof for the ``repro.pipeline`` portfolio
executor. A best-of-N portfolio over seeded pipeline instances must

1. select the *identical* winner (and identical per-instance
   objectives) for any worker count — determinism is non-negotiable;
2. on a multi-core host, beat the serial best-of-N baseline by >= 1.5x
   wall-clock once enough workers are available.

The speedup bar is only asserted when the host actually has >= 2 cores
(a single-core container cannot express process parallelism); the
measured numbers are reported either way.
"""

from __future__ import annotations

import os

import pytest

from repro.pipeline import run_portfolio
from repro.util.tables import format_table

PORTFOLIO_N = 8
JOB_COUNTS = (2, 4)
SPEEDUP_BAR = 1.5

_rows: list[tuple] = []


def _usable_cores() -> int:
    if hasattr(os, "process_cpu_count"):
        return os.process_cpu_count() or 1
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


_json_records: dict[str, dict] = {}


@pytest.mark.parametrize("assay", ["pcr", "ivd", "dilution"])
def test_portfolio_parallel_speedup(
    benchmark, report, bench_json, make_portfolio_spec, assay
):
    spec = make_portfolio_spec(assay, route=True)

    def serial():
        return run_portfolio(spec, n=PORTFOLIO_N, seed=7, objective="area", jobs=1)

    baseline = benchmark.pedantic(serial, rounds=1, iterations=1)

    parallel = {
        jobs: run_portfolio(spec, n=PORTFOLIO_N, seed=7, objective="area", jobs=jobs)
        for jobs in JOB_COUNTS
    }

    # Determinism: identical winner and per-instance objectives at any
    # worker count, and the selected objective is never worse.
    for jobs, result in parallel.items():
        assert result.winner_index == baseline.winner_index, (
            f"{assay}: jobs={jobs} picked instance {result.winner_index}, "
            f"serial picked {baseline.winner_index}"
        )
        assert [o.objective_value for o in result.outcomes] == [
            o.objective_value for o in baseline.outcomes
        ], f"{assay}: jobs={jobs} produced different instance objectives"
        assert (
            result.winner.objective_value <= baseline.winner.objective_value
        ), f"{assay}: jobs={jobs} selected a worse objective"

    speedups = {jobs: baseline.wall_s / r.wall_s for jobs, r in parallel.items()}
    best = max(speedups.values())
    cores = _usable_cores()
    _rows.append(
        (
            assay,
            PORTFOLIO_N,
            f"{baseline.winner.objective_value:g}",
            f"{baseline.wall_s:.2f}",
            *(f"{parallel[j].wall_s:.2f} ({speedups[j]:.2f}x)" for j in JOB_COUNTS),
        )
    )

    _json_records[assay] = {
        "n": PORTFOLIO_N,
        "best_area": baseline.winner.objective_value,
        "serial_wall_s": baseline.wall_s,
        "parallel": {
            str(j): {"wall_s": parallel[j].wall_s, "speedup": speedups[j]}
            for j in JOB_COUNTS
        },
        "usable_cores": cores,
    }
    # Rewritten per test (the writer merges sections), so a partial or
    # interrupted run still leaves the assays that did complete.
    bench_json("portfolio_parallel", dict(_json_records))

    if len(_rows) == 3:
        report(
            f"Portfolio executor: serial vs parallel best-of-{PORTFOLIO_N} "
            f"({cores} usable core(s))",
            format_table(
                ("assay", "N", "best area", "serial s",
                 *(f"jobs={j}" for j in JOB_COUNTS)),
                list(_rows),
            ),
        )

    if cores < 2:
        pytest.skip(
            f"host exposes {cores} usable core(s); the >= {SPEEDUP_BAR}x "
            f"speedup bar needs real parallelism (measured best {best:.2f}x)"
        )
    assert best >= SPEEDUP_BAR, (
        f"{assay}: best parallel speedup {best:.2f}x over serial best-of-"
        f"{PORTFOLIO_N} is below the {SPEEDUP_BAR}x bar on {cores} cores"
    )
