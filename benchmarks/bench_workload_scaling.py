"""Campaign-scale workload sweep: the scenario-diversity acceptance gate.

Not a paper artifact — the acceptance gate of the workload generator +
campaign runner (:mod:`repro.workload`):

1. **Nothing is lost at scale.** A 100+-scenario campaign spanning
   every generator family at 50-500 modules completes end to end with
   one terminal JSONL record per declared scenario — the log passes
   full schema validation, including the meta/record count cross-check.
2. **Generated workloads stay routable.** Mean routability at the
   paper's workload scale (<= 120 modules, auto-sized arrays in the
   paper's 10x10-16x16 band) must hold >= 95%; the full sweep records
   how routability degrades (or doesn't) out to 500 modules.
3. **The closed loop survives the grid.** Fault scenarios run
   detection-driven recovery; per-family completion rates are recorded.

Synthesis-time scaling is measured separately on one family (mix-tree)
so the curve is not confounded by family mix.

Results land in ``BENCH_campaign.json``; the weekly ``scaling``
workflow runs the full sweep and uploads the JSON, while PR CI runs
this file under ``REPRO_BENCH_FAST=1`` (two module counts, two fault
models — a few minutes).
"""

from __future__ import annotations

import os
import time

from conftest import write_bench_json

from repro.assay.catalog import build_assay
from repro.synthesis.flow import SynthesisFlow
from repro.util.tables import format_table
from repro.workload.campaign import CampaignConfig, CampaignRunner, validate_log
from repro.workload.generator import GENERATOR_FAMILIES

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")
FAMILIES = tuple(sorted(GENERATOR_FAMILIES))
#: The paper's workloads top out around a hundred operations; above
#: that the sweep documents scaling rather than enforcing the bar.
PAPER_SCALE_N = 120
MODULE_COUNTS = (50, 120) if FAST else (50, 120, 250, 500)
TIMING_COUNTS = MODULE_COUNTS
ROUTABILITY_BAR = 0.95


def _spec(family: str, n: int) -> str:
    return f"gen:{family}:n={n}:seed={n}"


def _campaign_config() -> CampaignConfig:
    grids: list[dict] = [
        {
            "generators": [_spec(f, n) for f in FAMILIES for n in MODULE_COUNTS],
            "fault_models": ["none", "permanent"] if FAST
            else ["none", "permanent", "transient", "wearout"],
        }
    ]
    if not FAST:
        grids += [
            # Explicit array sizes around the paper's band.
            {
                "generators": [_spec(f, 80) for f in FAMILIES],
                "arrays": ["12x12", "14x14"],
                "fault_models": ["none", "cluster"],
            },
            # Lossy sensing crossed with recurring fault processes.
            {
                "generators": [_spec("panel", 64), _spec("dilution-ladder", 64)],
                "sensors": ["ideal", "fpr=0.05,fnr=0.1"],
                "fault_models": ["permanent", "intermittent"],
            },
            # Engine cross-check at a mid scale.
            {
                "generators": [_spec("mixed", 100)],
                "engines": ["event", "stepped"],
                "fault_models": ["none", "permanent"],
            },
        ]
    return CampaignConfig.from_dict(
        {"campaign": {"name": "scaling", "seed": 7}, "grid": grids},
        source="bench_workload_scaling",
    )


def test_campaign_scaling(tmp_path, report):
    config = _campaign_config()
    scenarios = config.expand()
    if not FAST:
        assert len(scenarios) >= 100, "full sweep must span 100+ scenarios"

    log = tmp_path / "campaign.jsonl"
    t0 = time.perf_counter()
    result = CampaignRunner(config).run(log, jobs=1)
    wall_s = time.perf_counter() - t0

    # Gate 1: zero silently-lost scenarios, schema-valid log.
    assert validate_log(log) == []
    assert len(result.records) == len(scenarios)
    assert all(r.status in ("ok", "infeasible", "timeout", "crashed")
               for r in result.records)

    # Per-(family, n) rollup over auto-sized arrays (the scaling curve).
    curve: dict[tuple[str, int], dict] = {}
    for r in result.records:
        if r.family is None or r.array != "auto":
            continue
        row = curve.setdefault(
            (r.family, r.n),
            {"scenarios": 0, "ok": 0, "completed": 0, "routability": []},
        )
        row["scenarios"] += 1
        row["ok"] += r.ok
        row["completed"] += r.completed
        if r.synthesis and r.synthesis.get("routability") is not None:
            row["routability"].append(r.synthesis["routability"])

    # Gate 2: the paper-scale routability bar.
    paper_vals = [
        v for (_, n), row in curve.items() if n <= PAPER_SCALE_N
        for v in row["routability"]
    ]
    paper_mean = sum(paper_vals) / len(paper_vals)
    assert paper_mean >= ROUTABILITY_BAR, (
        f"paper-scale routability {paper_mean:.1%} below {ROUTABILITY_BAR:.0%}"
    )

    rows = [
        (
            family, n, row["scenarios"], row["ok"], row["completed"],
            f"{sum(row['routability']) / len(row['routability']):.1%}"
            if row["routability"] else "-",
        )
        for (family, n), row in sorted(curve.items())
    ]
    report(
        "Campaign scaling: generator families x module count",
        format_table(
            ("family", "n", "scenarios", "ok", "completed", "routability"),
            rows,
        )
        + f"\n{len(scenarios)} scenarios, 0 lost; "
        f"paper-scale routability {paper_mean:.1%} (bar {ROUTABILITY_BAR:.0%}); "
        f"wall {wall_s:.0f}s",
    )
    write_bench_json(
        "campaign_scaling",
        {
            "fast": FAST,
            "scenario_count": len(scenarios),
            "lost_scenarios": 0,
            "status_counts": result.status_counts,
            "paper_scale_routability": paper_mean,
            "routability_bar": ROUTABILITY_BAR,
            "wall_s": wall_s,
            "curve": [
                {
                    "family": family,
                    "n": n,
                    "scenarios": row["scenarios"],
                    "ok": row["ok"],
                    "completed": row["completed"],
                    "mean_routability": (
                        sum(row["routability"]) / len(row["routability"])
                        if row["routability"] else None
                    ),
                }
                for (family, n), row in sorted(curve.items())
            ],
        },
        default="BENCH_campaign.json",
    )


def test_synthesis_time_scaling(report):
    """Synthesis wall time and routability vs module count, one family."""
    rows = []
    samples = []
    for n in TIMING_COUNTS:
        graph, binding = build_assay(_spec("mix-tree", n))
        t0 = time.perf_counter()
        result = SynthesisFlow(
            max_parked=2, seed=0, route=True
        ).run(graph, explicit_binding=binding)
        dt = time.perf_counter() - t0
        plan = result.routing_plan
        width, height = result.placement_result.placement.array_dims()
        rows.append((
            n, f"{dt:.1f}", f"{width}x{height}",
            f"{result.schedule.makespan:g}", f"{plan.routability:.1%}",
        ))
        samples.append({
            "n": n,
            "synthesis_s": dt,
            "array": f"{width}x{height}",
            "makespan_s": result.schedule.makespan,
            "routability": plan.routability,
        })
    report(
        "Synthesis-time scaling (mix-tree, max_parked=2)",
        format_table(
            ("n", "synthesis (s)", "array", "makespan (s)", "routability"),
            rows,
        ),
    )
    write_bench_json(
        "synthesis_time_scaling",
        {"fast": FAST, "family": "mix-tree", "samples": samples},
        default="BENCH_campaign.json",
    )
