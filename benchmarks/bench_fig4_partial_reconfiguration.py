"""Figure 4 — initial placement and partial reconfiguration.

Times the on-line relocation of a module off a faulty cell — the
operation that must be "fast enough for dynamic on-line reconfiguration
during field operation" (paper Section 5.1).
"""

from repro.experiments.fig4 import run_reconfiguration_example
from repro.fault.reconfigure import PartialReconfigurer
from repro.viz.ascii_art import render_placement


def test_fig4_partial_reconfiguration(benchmark, report):
    example = run_reconfiguration_example(seed=23)
    engine = PartialReconfigurer()

    # Benchmark the pure relocation (the field-operation-critical path).
    updated, plan = benchmark(
        engine.apply, example.placement_before, example.faulty_cell
    )

    assert plan.moved_ops
    updated.validate()
    for op in plan.moved_ops:
        assert not updated.get(op).footprint.contains_point(example.faulty_cell)

    lines = [
        f"faulty cell: {example.faulty_cell}",
        f"relocated: {', '.join(str(r) for r in plan.relocations)}",
        f"total droplet migration distance: {plan.total_migration_distance} cells",
        "",
        "before:",
        render_placement(example.placement_before, use_core=True, legend=False),
        "",
        "after:",
        render_placement(updated, use_core=True, legend=False),
    ]
    report("Figure 4: partial reconfiguration example", "\n".join(lines))
