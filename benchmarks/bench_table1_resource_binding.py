"""Table 1 — resource binding in PCR.

Regenerates the binding table (operation, hardware, module footprint,
mixing time) from the module library and times the binder. The library
must match every row of the paper's Table 1 exactly.
"""

from repro.assay.protocols.pcr import PCR_BINDING, build_pcr_mixing_graph
from repro.experiments.pcr import pcr_case_study, verify_table1
from repro.synthesis.binder import ResourceBinder


def test_table1_resource_binding(benchmark, report):
    graph = build_pcr_mixing_graph()
    binder = ResourceBinder()

    binding = benchmark(binder.bind, graph, PCR_BINDING)

    assert len(binding) == 7
    assert verify_table1() == [], "module library deviates from Table 1"
    report("Table 1: resource binding in PCR", pcr_case_study().table1_text())
