"""Figure 7 — minimum-area SA placement (and its low FTI).

Paper: SA reaches 141.75 mm^2 / 63 cells (7x9), 25% below the greedy
baseline; the min-area placement's FTI is only 0.1270. This bench runs
the full annealer once (balanced preset) and reports paper-vs-measured.
"""

from repro.experiments.fig7 import run_min_area_experiment
from repro.placement.annealer import AnnealingParams
from repro.util.tables import format_table
from repro.viz.ascii_art import render_fti_map, render_placement


def test_fig7_min_area_placement(benchmark, report):
    experiment = benchmark.pedantic(
        run_min_area_experiment,
        kwargs={"seed": 2, "params": AnnealingParams.balanced()},
        rounds=1,
        iterations=1,
    )

    # Shape assertions (see DESIGN.md): SA clearly beats greedy and
    # lands near the paper's 63-cell optimum; compactness costs FTI.
    assert experiment.sa.area_cells < experiment.greedy.area_cells
    assert experiment.sa.area_cells <= 70
    assert experiment.improvement_pct >= 10.0
    assert experiment.fti.fti < 0.5
    experiment.sa.placement.validate()

    lines = [
        format_table(("metric", "paper", "measured"), experiment.rows()),
        "",
        "measured min-area placement (merged view):",
        render_placement(experiment.sa.placement, legend=False),
        "",
        "C-coveredness map (+ covered / x uncovered):",
        render_fti_map(experiment.fti),
    ]
    report("Figure 7: min-area placement vs greedy", "\n".join(lines))
