"""Section 6.1 baseline — the greedy placer.

The paper's baseline packs largest-area-first at bottom-left corners,
yielding 189 mm^2 (84 cells) on PCR; the SA placer then beats it by
25%. This bench times the greedy placer and reports its area.
"""

from repro.experiments import paper_constants as paper
from repro.experiments.pcr import pcr_case_study
from repro.placement.greedy import GreedyPlacer
from repro.util.tables import format_table


def test_baseline_greedy(benchmark, report):
    study = pcr_case_study()
    placer = GreedyPlacer()

    result = benchmark(placer.place, study.schedule, study.binding)

    result.placement.validate()
    assert len(result.placement) == 7
    # Ballpark of the paper's 84-cell baseline.
    assert 63 <= result.area_cells <= 110

    w, h = result.placement.array_dims()
    report(
        "Greedy baseline (Section 6.1)",
        format_table(
            ("metric", "paper", "measured"),
            [
                ("area (cells)", paper.GREEDY_AREA_CELLS, result.area_cells),
                ("area (mm^2)", f"{paper.GREEDY_AREA_MM2:g}", f"{result.area_mm2:g}"),
                ("array", "-", f"{w}x{h}"),
            ],
        ),
    )
