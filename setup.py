"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in environments whose tooling predates PEP 660
editable installs (e.g. offline boxes without the `wheel` package,
where `pip install -e .` falls back to the legacy code path).
"""

from setuptools import setup

setup()
